#include "analysis/miss_classifier.hpp"

namespace cpc::analysis {

MissClassifier::MissClassifier(cache::CacheGeometry geometry)
    : geo_(geometry),
      ways_(static_cast<std::size_t>(geo_.num_sets()) * geo_.ways),
      reuse_(geo_.line_bytes) {}

bool MissClassifier::set_associative_access(std::uint32_t line_addr) {
  const std::uint32_t set = geo_.set_of_line(line_addr);
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < geo_.ways; ++w) {
    Way& way = ways_[static_cast<std::size_t>(set) * geo_.ways + w];
    if (way.valid && way.line_addr == line_addr) {
      way.last_use = ++clock_;
      return false;  // hit
    }
    if (!way.valid) {
      if (victim == nullptr || victim->valid) victim = &way;
    } else if (victim == nullptr || (victim->valid && way.last_use < victim->last_use)) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->line_addr = line_addr;
  victim->last_use = ++clock_;
  return true;  // miss
}

bool MissClassifier::access(std::uint32_t addr) {
  const std::uint32_t line_addr = geo_.line_of(addr);
  ++breakdown_.accesses;

  const std::uint64_t distance = reuse_.access(addr);
  const bool first_touch = touched_.insert(line_addr).second;
  const bool real_miss = set_associative_access(line_addr);

  if (!real_miss) {
    ++breakdown_.hits;
    return false;
  }
  if (first_touch) {
    ++breakdown_.compulsory;
  } else if (distance >= geo_.num_lines()) {
    ++breakdown_.capacity;  // fully associative LRU of equal size misses too
  } else {
    ++breakdown_.conflict;
  }
  return true;
}

}  // namespace cpc::analysis
