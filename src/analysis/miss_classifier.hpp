#pragma once
// Hill's 3C miss decomposition for a reference stream and a cache geometry:
//
//   compulsory — first touch of the line (an infinite cache misses too)
//   capacity   — non-compulsory misses a fully associative LRU cache of the
//                same size also takes (reuse distance >= line capacity)
//   conflict   — everything else (the set mapping's fault)
//
// The experiment analysis uses this to substantiate the paper's section 4.3
// narrative: HAC removes conflict misses; CPP attacks capacity/compulsory
// misses by prefetching, which is why it wins exactly where conflicts are
// not the story — and why it beats BCP when they are.

#include <cstdint>
#include <unordered_set>

#include "analysis/reuse_distance.hpp"
#include "cache/config.hpp"

namespace cpc::analysis {

struct MissBreakdown {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t compulsory = 0;
  std::uint64_t capacity = 0;
  std::uint64_t conflict = 0;

  std::uint64_t misses() const { return compulsory + capacity + conflict; }
  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses()) / static_cast<double>(accesses);
  }
};

/// Streams word accesses and classifies each one online.
class MissClassifier {
 public:
  explicit MissClassifier(cache::CacheGeometry geometry);

  /// Records one access; returns true when it missed in the set-associative
  /// cache (the real miss, which the 3C counters then attribute).
  bool access(std::uint32_t addr);

  const MissBreakdown& breakdown() const { return breakdown_; }
  const cache::CacheGeometry& geometry() const { return geo_; }

 private:
  struct Way {
    std::uint32_t line_addr = 0;
    bool valid = false;
    std::uint64_t last_use = 0;
  };

  bool set_associative_access(std::uint32_t line_addr);

  cache::CacheGeometry geo_;
  std::vector<Way> ways_;  // sets x ways, tag-only
  std::uint64_t clock_ = 0;
  std::unordered_set<std::uint32_t> touched_;    // lines seen ever
  ReuseDistanceProfiler reuse_;                  // fully associative oracle
  MissBreakdown breakdown_;
};

}  // namespace cpc::analysis
