#pragma once
// Per-codec compressibility survey of a trace: classifies every word-level
// memory access (the Fig. 3 study, under any codec) and costs the final
// image of every touched line through the codec's whole-line encoder, so
// cross-codec comparisons include per-word prefixes, dictionary indices
// and flag arrays (Touché-style tag/metadata accounting — docs/codecs.md).
// Feeds the codec-mode sweep CSV (cpc_run --codecs) and the codec
// comparison tables.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "compress/classification_stats.hpp"
#include "cpu/micro_op.hpp"

namespace cpc::analysis {

/// Single pass over a trace for one codec. The reference stream is
/// replayed into a word image (stores and loads both deposit the value the
/// core saw), then each touched line's final image is costed whole — the
/// same line granularity the transfer path compresses at.
inline compress::ClassificationStats survey_codec(
    std::span<const cpu::MicroOp> trace, compress::Codec codec,
    std::size_t words_per_line = 8) {
  compress::ClassificationStats stats(codec);
  std::map<std::uint32_t, std::uint32_t> image;  // word address -> value
  for (const cpu::MicroOp& op : trace) {
    if (!cpu::is_memory_op(op.kind)) continue;
    stats.record(op.value, op.addr);
    image[op.addr & ~3u] = op.value;
  }
  // std::map iterates in address order, so each line groups contiguously;
  // words the trace never touched stay zero, as they would in a fresh
  // allocation.
  const std::uint32_t line_bytes =
      static_cast<std::uint32_t>(words_per_line) * 4u;
  std::vector<std::uint32_t> words(words_per_line, 0);
  auto it = image.begin();
  while (it != image.end()) {
    const std::uint32_t base = it->first & ~(line_bytes - 1u);
    std::fill(words.begin(), words.end(), 0u);
    while (it != image.end() && (it->first & ~(line_bytes - 1u)) == base) {
      words[(it->first - base) / 4u] = it->second;
      ++it;
    }
    stats.record_line(words.data(), words_per_line, base);
  }
  return stats;
}

}  // namespace cpc::analysis
