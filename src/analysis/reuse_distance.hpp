#pragma once
// Exact LRU reuse-distance profiling over cache-line-granular references.
//
// The reuse distance of an access is the number of *distinct* lines touched
// since the previous access to the same line (infinity for first touches).
// Under fully associative LRU, an access hits iff its reuse distance is
// smaller than the cache's line capacity, which makes the histogram a
// capacity-sweep oracle: one profiling pass yields the miss count of every
// cache size at once. The experiment analysis uses it to explain where the
// paper's workloads sit relative to the 8K L1 / 64K L2 of Fig. 9.

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

namespace cpc::analysis {

/// Order-statistic treap over access timestamps: supports insert, erase and
/// "how many stored timestamps are greater than t" in O(log n), which is
/// exactly the distinct-lines-since-last-access query.
class ReuseDistanceProfiler {
 public:
  static constexpr std::uint64_t kInfinite = std::numeric_limits<std::uint64_t>::max();

  explicit ReuseDistanceProfiler(std::uint32_t line_bytes = 64)
      : line_bytes_(line_bytes) {}

  /// Records an access; returns its reuse distance (kInfinite on first touch).
  std::uint64_t access(std::uint32_t addr);

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint64_t accesses() const { return time_; }
  std::uint64_t distinct_lines() const { return last_access_.size(); }

  /// Histogram bucketed by power-of-two distance: bucket[i] counts accesses
  /// with distance in [2^i, 2^(i+1)); `cold` counts first touches.
  struct Histogram {
    std::vector<std::uint64_t> buckets;
    std::uint64_t cold = 0;
    std::uint64_t total = 0;
  };
  const Histogram& histogram() const { return histogram_; }

  /// Number of misses a fully associative LRU cache with `lines` lines
  /// would take on the recorded stream (including cold misses).
  std::uint64_t misses_at_capacity(std::uint64_t lines) const;

 private:
  struct Node {
    std::uint64_t time;      // key
    std::uint64_t priority;  // heap order
    std::uint32_t size = 1;  // subtree size
    Node* left = nullptr;
    Node* right = nullptr;
  };

  static std::uint32_t size_of(const Node* n) { return n == nullptr ? 0 : n->size; }
  static void pull(Node* n) { n->size = 1 + size_of(n->left) + size_of(n->right); }
  Node* merge(Node* a, Node* b);
  void split(Node* n, std::uint64_t time, Node*& left, Node*& right);
  void insert(std::uint64_t time);
  void erase(std::uint64_t time);
  std::uint64_t count_greater(std::uint64_t time) const;

  std::uint32_t line_bytes_;
  std::uint64_t time_ = 0;
  Node* root_ = nullptr;
  std::deque<Node> pool_;  // arena with stable references; nodes recycled via free_
  std::vector<Node*> free_;
  std::unordered_map<std::uint32_t, std::uint64_t> last_access_;  // line -> time
  Histogram histogram_;
  // Exact per-distance counts folded lazily into the histogram, plus a
  // sorted map for misses_at_capacity queries.
  std::map<std::uint64_t, std::uint64_t> distance_counts_;
};

}  // namespace cpc::analysis
