#pragma once
// Working-set and footprint statistics for a trace's memory reference
// stream: distinct bytes touched, read/write balance, and per-region
// (heap / globals / stack / code) footprints. Used by the analysis bench
// and by tests that pin each workload's footprint against the cache sizes
// of Fig. 9.

#include <cstdint>
#include <span>
#include <unordered_set>

#include "cpu/micro_op.hpp"
#include "mem/heap_allocator.hpp"

namespace cpc::analysis {

struct WorkingSet {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t distinct_words = 0;
  std::uint64_t distinct_lines64 = 0;  ///< 64-byte line granularity
  std::uint64_t heap_words = 0;
  std::uint64_t global_words = 0;

  std::uint64_t footprint_bytes() const { return distinct_lines64 * 64; }
  double write_fraction() const {
    const std::uint64_t total = loads + stores;
    return total == 0 ? 0.0 : static_cast<double>(stores) / static_cast<double>(total);
  }
};

/// Single pass over a trace.
inline WorkingSet measure_working_set(std::span<const cpu::MicroOp> trace) {
  WorkingSet ws;
  std::unordered_set<std::uint32_t> words;
  std::unordered_set<std::uint32_t> lines;
  for (const cpu::MicroOp& op : trace) {
    if (!cpu::is_memory_op(op.kind)) continue;
    if (op.kind == cpu::OpKind::kLoad) {
      ++ws.loads;
    } else {
      ++ws.stores;
    }
    const std::uint32_t word = op.addr & ~3u;
    if (words.insert(word).second) {
      if (word >= mem::kDefaultHeapBase) {
        ++ws.heap_words;
      } else if (word >= mem::kGlobalBase) {
        ++ws.global_words;
      }
    }
    lines.insert(op.addr / 64);
  }
  ws.distinct_words = words.size();
  ws.distinct_lines64 = lines.size();
  return ws;
}

}  // namespace cpc::analysis
