// Reproduces paper Figure 10: memory traffic of each configuration
// normalised to BC (= 100). Paper reference points: BCC ≈ 60%, BCP ≈ 180%,
// CPP ≈ 90% on average.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const auto rows = bench::run_sweep(
      options, {sim::kAllConfigs, sim::kAllConfigs + std::size(sim::kAllConfigs)});

  stats::Table table = bench::normalised_table(
      "Figure 10: memory traffic normalised to BC (%)", rows,
      bench::paper_config_names(),
      [](const sim::RunResult& r) { return r.traffic_words(); });
  bench::emit(table, "fig10_traffic_normalised");

  stats::Table words = bench::absolute_table(
      "Raw memory traffic (32-bit words over the L2<->memory bus)", rows,
      bench::paper_config_names(),
      [](const sim::RunResult& r) { return r.traffic_words(); });
  bench::emit(words, "fig10_traffic_words", 0);

  std::cout << "Paper reference: BCC ~60, BCP ~180, CPP ~90 (average row).\n";
  return 0;
}
