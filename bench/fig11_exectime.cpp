// Reproduces paper Figure 11: overall execution time normalised to BC
// (= 100). Paper reference points: CPP runs 7% faster than BC on average
// and ~2% faster than HAC; BCP beats CPP except where conflict misses
// dominate (olden.health, spec2000.300.twolf).

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const auto rows = bench::run_sweep(
      options, {sim::kAllConfigs, sim::kAllConfigs + std::size(sim::kAllConfigs)});

  stats::Table table = bench::normalised_table(
      "Figure 11: execution time normalised to BC (%)", rows,
      bench::paper_config_names(),
      [](const sim::RunResult& r) { return r.cycles(); });
  bench::emit(table, "fig11_exectime_normalised");

  stats::Table ipc = bench::absolute_table(
      "Instructions per cycle", rows, bench::paper_config_names(),
      [](const sim::RunResult& r) { return r.core.ipc(); });
  bench::emit(ipc, "fig11_ipc", 2);

  std::cout << "Paper reference: BCC == BC; CPP ~93 (7% speedup), ~2% over HAC;\n"
               "CPP beats BCP on conflict-dominated programs (health, twolf).\n";
  return 0;
}
