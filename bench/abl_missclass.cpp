// Analysis: 3C miss decomposition per workload (supports the paper's §4.3
// discussion). HAC can only remove *conflict* misses; prefetching (BCP,
// CPP) attacks compulsory and capacity misses. Benchmarks whose conflict
// share is large are exactly the ones where the paper reports CPP beating
// BCP (olden.health, spec2000.300.twolf). Workloads are analysed in
// parallel on the sweep pool.

#include <iostream>

#include "analysis/miss_classifier.hpp"
#include "analysis/working_set.hpp"
#include "bench_common.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();

  std::vector<std::vector<double>> l1_rows(options.workloads.size());
  std::vector<std::vector<double>> l2_rows(options.workloads.size());
  bench::for_each_trace(
      options, [&](std::size_t i, const workload::Workload&,
                   const cpu::Trace& trace) {
        analysis::MissClassifier l1(cache::kBaselineConfig.l1);
        analysis::MissClassifier l2(cache::kBaselineConfig.l2);
        for (const cpu::MicroOp& op : trace) {
          if (!cpu::is_memory_op(op.kind)) continue;
          l1.access(op.addr);
          l2.access(op.addr);
        }
        const analysis::WorkingSet ws = analysis::measure_working_set(trace);
        const auto row = [](const analysis::MissBreakdown& b) {
          const double m = static_cast<double>(b.misses());
          return std::vector<double>{b.miss_rate() * 100.0,
                                     m == 0 ? 0.0 : b.compulsory / m * 100.0,
                                     m == 0 ? 0.0 : b.capacity / m * 100.0,
                                     m == 0 ? 0.0 : b.conflict / m * 100.0};
        };
        l1_rows[i] = row(l1.breakdown());
        l1_rows[i].push_back(static_cast<double>(ws.footprint_bytes()) / 1024.0);
        l2_rows[i] = row(l2.breakdown());
      });

  stats::Table table("3C decomposition of L1 (8K DM) misses, % of misses",
                     {"miss rate %", "compulsory", "capacity", "conflict",
                      "footprint KiB"});
  stats::Table l2_table("3C decomposition of L2 (64K 2-way) misses, % of misses",
                        {"miss rate %", "compulsory", "capacity", "conflict"});
  for (std::size_t i = 0; i < options.workloads.size(); ++i) {
    table.add_row(options.workloads[i].name, std::move(l1_rows[i]));
    l2_table.add_row(options.workloads[i].name, std::move(l2_rows[i]));
  }
  table.add_mean_row();
  l2_table.add_mean_row();

  std::cout << table.to_ascii(1) << '\n' << l2_table.to_ascii(1) << '\n';
  std::cout << "Reading: high conflict share => HAC helps and CPP beats BCP\n"
               "(the paper's health/twolf cases); high capacity share => \n"
               "prefetching wins and associativity is irrelevant.\n";
  return 0;
}
