// Analysis: 3C miss decomposition per workload (supports the paper's §4.3
// discussion). HAC can only remove *conflict* misses; prefetching (BCP,
// CPP) attacks compulsory and capacity misses. Benchmarks whose conflict
// share is large are exactly the ones where the paper reports CPP beating
// BCP (olden.health, spec2000.300.twolf).

#include <iostream>

#include "analysis/miss_classifier.hpp"
#include "analysis/working_set.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();

  stats::Table table("3C decomposition of L1 (8K DM) misses, % of misses",
                     {"miss rate %", "compulsory", "capacity", "conflict",
                      "footprint KiB"});
  stats::Table l2_table("3C decomposition of L2 (64K 2-way) misses, % of misses",
                        {"miss rate %", "compulsory", "capacity", "conflict"});
  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    analysis::MissClassifier l1(cache::kBaselineConfig.l1);
    analysis::MissClassifier l2(cache::kBaselineConfig.l2);
    for (const cpu::MicroOp& op : trace) {
      if (!cpu::is_memory_op(op.kind)) continue;
      l1.access(op.addr);
      l2.access(op.addr);
    }
    const analysis::WorkingSet ws = analysis::measure_working_set(trace);
    const auto row = [](const analysis::MissBreakdown& b) {
      const double m = static_cast<double>(b.misses());
      return std::vector<double>{b.miss_rate() * 100.0,
                                 m == 0 ? 0.0 : b.compulsory / m * 100.0,
                                 m == 0 ? 0.0 : b.capacity / m * 100.0,
                                 m == 0 ? 0.0 : b.conflict / m * 100.0};
    };
    auto l1_row = row(l1.breakdown());
    l1_row.push_back(static_cast<double>(ws.footprint_bytes()) / 1024.0);
    table.add_row(wl.name, std::move(l1_row));
    l2_table.add_row(wl.name, row(l2.breakdown()));
  }
  table.add_mean_row();
  l2_table.add_mean_row();

  std::cout << table.to_ascii(1) << '\n' << l2_table.to_ascii(1) << '\n';
  std::cout << "Reading: high conflict share => HAC helps and CPP beats BCP\n"
               "(the paper's health/twolf cases); high capacity share => \n"
               "prefetching wins and associativity is irrelevant.\n";
  return 0;
}
