// Ablation: core aggressiveness. The paper's premise is that misses on the
// critical path starve a wide out-of-order core; a wider core should
// therefore amplify CPP's benefit (more exposed ILP per hidden miss), while
// a narrow in-order-ish core shrinks it. Sweep issue width 2/4/8 with
// proportionate FU/window scaling.

#include <iostream>

#include "sim/experiment.hpp"
#include "stats/table.hpp"

namespace {

cpc::cpu::CoreConfig scaled_core(unsigned width) {
  cpc::cpu::CoreConfig cfg;
  cfg.fetch_width = cfg.issue_width = cfg.commit_width = width;
  cfg.window_size = 4 * width;
  cfg.lsq_size = 2 * width;
  cfg.int_alu_units = width;
  cfg.fp_alu_units = width;
  cfg.mem_ports = width / 2 > 0 ? width / 2 : 1;
  return cfg;
}

}  // namespace

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const std::vector<unsigned> widths = {2, 4, 8};

  stats::Table table("Ablation: CPP speedup over BC (%) vs issue width",
                     {"2-wide", "4-wide (paper)", "8-wide"});
  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    std::vector<double> cells;
    for (unsigned width : widths) {
      const cpu::CoreConfig core = scaled_core(width);
      const sim::RunResult bc = sim::run_trace(trace, sim::ConfigKind::kBC, core);
      const sim::RunResult cpp = sim::run_trace(trace, sim::ConfigKind::kCPP, core);
      cells.push_back((bc.cycles() / cpp.cycles() - 1.0) * 100.0);
    }
    table.add_row(wl.name, std::move(cells));
  }
  table.add_mean_row();

  std::cout << table.to_ascii(2) << '\n';
  std::cout << "Expectation: memory-bound programs keep their CPP gain at all\n"
               "widths; compute-bound ones only expose it once the core is\n"
               "wide enough for misses to be the bottleneck.\n";
  return 0;
}
