// Ablation: core aggressiveness. The paper's premise is that misses on the
// critical path starve a wide out-of-order core; a wider core should
// therefore amplify CPP's benefit (more exposed ILP per hidden miss), while
// a narrow in-order-ish core shrinks it. Sweep issue width 2/4/8 with
// proportionate FU/window scaling.

#include <iostream>

#include "bench_common.hpp"

namespace {

cpc::cpu::CoreConfig scaled_core(unsigned width) {
  cpc::cpu::CoreConfig cfg;
  cfg.fetch_width = cfg.issue_width = cfg.commit_width = width;
  cfg.window_size = 4 * width;
  cfg.lsq_size = 2 * width;
  cfg.int_alu_units = width;
  cfg.fp_alu_units = width;
  cfg.mem_ports = width / 2 > 0 ? width / 2 : 1;
  return cfg;
}

}  // namespace

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const std::vector<unsigned> widths = {2, 4, 8};

  // Two jobs (BC, CPP) per issue width per workload.
  std::vector<bench::Variant> variants;
  for (unsigned width : widths) {
    const cpu::CoreConfig core = scaled_core(width);
    bench::Variant bc = bench::config_variant(sim::ConfigKind::kBC, core);
    bc.label += "@" + std::to_string(width) + "w";
    bench::Variant cpp = bench::config_variant(sim::ConfigKind::kCPP, core);
    cpp.label += "@" + std::to_string(width) + "w";
    variants.push_back(std::move(bc));
    variants.push_back(std::move(cpp));
  }
  const auto grid = bench::run_variant_grid(options, variants);

  stats::Table table("Ablation: CPP speedup over BC (%) vs issue width",
                     {"2-wide", "4-wide (paper)", "8-wide"});
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    std::vector<double> cells;
    for (std::size_t k = 0; k < widths.size(); ++k) {
      const double bc = grid[w][2 * k].run.cycles();
      const double cpp = grid[w][2 * k + 1].run.cycles();
      cells.push_back((bc / cpp - 1.0) * 100.0);
    }
    table.add_row(options.workloads[w].name, std::move(cells));
  }
  table.add_mean_row();

  std::cout << table.to_ascii(2) << '\n';
  std::cout << "Expectation: memory-bound programs keep their CPP gain at all\n"
               "widths; compute-bound ones only expose it once the core is\n"
               "wide enough for misses to be the bottleneck.\n";
  return 0;
}
