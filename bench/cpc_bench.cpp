// cpc_bench — the benchmark harness behind the BENCH_<n>.json perf
// trajectory and the CI perf-regression gate (docs/benchmarking.md).
//
// Replays the kernel suite (and the committed fuzz corpus, when present)
// through SweepRunner via sim::run_bench_suites, prints a per-suite summary,
// optionally writes the schema-versioned JSON report, and optionally gates
// the measured ops/sec against a committed baseline report.
//
// Exit codes follow tools/cli_util.hpp, with one harness-specific reading:
//   0 — success (and, with --check, the gate passed)
//   1 — performance regression (--check failed) or internal error
//   2 — usage error
//   3 — bad input (missing/malformed baseline JSON, unknown workload)
//   4 — invariant violation (a benchmarked run corrupted its hierarchy)

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "core/cpp_hierarchy.hpp"
#include "net/protocol.hpp"
#include "sim/bench_meter.hpp"
#include "verify/fault.hpp"

namespace {

struct Options {
  cpc::sim::BenchRunOptions run;
  std::string out_path;       ///< write the JSON report here ("" = don't)
  std::string check_path;     ///< gate against this baseline ("" = don't)
  double min_ratio = 0.85;    ///< gate floor: current >= ratio * baseline
  double handicap = 1.0;      ///< divide measured ops/sec (gate self-test)
  bool trip_invariant = false;  ///< exit-code self-test (exit 4)
  bool help = false;
};

void print_usage(std::ostream& out) {
  out << "usage: cpc_bench [options]\n"
         "\n"
         "Benchmark the simulator: replay the kernel suite (14 workloads x 5\n"
         "paper configs) and the fuzz corpus through SweepRunner, measuring\n"
         "simulated-ops/sec. See docs/benchmarking.md.\n"
         "\n"
         "  --quick            quick mode: 120k ops/kernel, median-of-3 "
         "repeats\n"
         "  --full             full mode: 600k ops/kernel, 1 repeat "
         "(default)\n"
         "  --ops N            micro-ops per kernel trace (overrides mode)\n"
         "  --seed S           workload generator seed (default 0x5eed)\n"
         "  --repeats N        repeats per suite; the median gates\n"
         "  --jobs N           sweep threads (default 1 for stable timing;\n"
         "                     0 = CPC_JOBS or hardware concurrency)\n"
         "  --procs N          shard each suite across N supervised worker\n"
         "                     processes (crash-isolated; deterministic\n"
         "                     fields stay bit-identical to --jobs runs)\n"
         "  --workloads a,b,c  kernel-name filter (default: all 14)\n"
         "  --codecs LIST      compression codecs crossed with the configs:\n"
         "                     paper,fpc,bdi,wkdm or all (default: paper,\n"
         "                     which keeps reports comparable to committed\n"
         "                     BENCH_<n>.json baselines)\n"
         "  --corpus DIR       fuzz-corpus directory (default tests/corpus;\n"
         "                     missing directory skips the suite)\n"
         "  --out FILE         write the JSON report (the BENCH_<n>.json "
         "schema)\n"
         "  --check FILE       gate against a baseline report; exit 1 when\n"
         "                     any suite's median ops/sec falls below\n"
         "                     min-ratio x baseline\n"
         "  --min-ratio R      gate floor (default 0.85)\n"
         "  --handicap X       divide measured ops/sec by X before gating\n"
         "                     (CI uses --handicap 2 to prove the gate "
         "fires)\n"
         "  --verbose          progress lines on stderr\n"
         "  --trip-invariant   self-test: corrupt a CPP hierarchy and exit\n"
         "                     through the invariant path (CTest pins exit "
         "4)\n"
         "  --help             this text\n";
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used, 0);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw cpc::cli::BadInput("flag " + flag + " needs an unsigned integer, got '" +
                             text + "'");
  }
}

double parse_double(const std::string& flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size() || !(value > 0.0)) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw cpc::cli::BadInput("flag " + flag + " needs a positive number, got '" +
                             text + "'");
  }
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Parses argv. Returns false (usage error) on unknown flags or missing
/// values; BadInput for well-formed flags with unparseable values.
bool parse_args(int argc, char** argv, Options& options) {
  bool ops_overridden = false;
  bool repeats_overridden = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw cpc::cli::BadInput("flag " + arg + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return true;
    } else if (arg == "--quick") {
      options.run.mode = "quick";
    } else if (arg == "--full") {
      options.run.mode = "full";
    } else if (arg == "--ops") {
      options.run.trace_ops = parse_u64(arg, value());
      ops_overridden = true;
    } else if (arg == "--seed") {
      options.run.seed = parse_u64(arg, value());
    } else if (arg == "--repeats") {
      options.run.repeats = static_cast<unsigned>(parse_u64(arg, value()));
      repeats_overridden = true;
    } else if (arg == "--jobs") {
      options.run.threads = static_cast<unsigned>(parse_u64(arg, value()));
    } else if (arg == "--procs") {
      options.run.procs = static_cast<unsigned>(parse_u64(arg, value()));
    } else if (arg == "--workloads") {
      options.run.workloads = split_csv(value());
    } else if (arg == "--codecs") {
      try {
        options.run.codecs = cpc::net::parse_codec_list(value());
      } catch (const std::invalid_argument& error) {
        throw cpc::cli::BadInput(error.what());
      }
    } else if (arg == "--corpus") {
      options.run.corpus_dir = value();
    } else if (arg == "--out") {
      options.out_path = value();
    } else if (arg == "--check") {
      options.check_path = value();
    } else if (arg == "--min-ratio") {
      options.min_ratio = parse_double(arg, value());
    } else if (arg == "--handicap") {
      options.handicap = parse_double(arg, value());
    } else if (arg == "--verbose") {
      options.run.quiet = false;
    } else if (arg == "--trip-invariant") {
      options.trip_invariant = true;
    } else {
      std::cerr << "cpc_bench: unknown flag '" << arg << "'\n";
      return false;
    }
  }
  // Mode presets apply only where no explicit flag took priority.
  if (options.run.mode == "quick") {
    if (!ops_overridden) options.run.trace_ops = 120'000;
    if (!repeats_overridden) options.run.repeats = 3;
  } else {
    if (!ops_overridden) options.run.trace_ops = 600'000;
    if (!repeats_overridden) options.run.repeats = 1;
  }
  return true;
}

/// Deliberately corrupts CPP metadata and validates; the resulting
/// InvariantViolation unwinds through guarded_main as exit 4, pinning the
/// harness's exit-code contract end to end (same shape as cpc_faultcamp).
int trip_invariant() {
  using namespace cpc;
  core::CppHierarchy hierarchy;
  for (std::uint32_t i = 0; i < 512; ++i) {
    hierarchy.write(i * 4, i % 7);  // compressible lines → PA flags to strike
  }
  verify::FaultCommand command;
  command.kind = verify::FaultKind::kPaFlag;
  command.level = 1;
  command.seed = 42;
  if (!hierarchy.inject_fault(command)) {
    std::cerr << "error: no resident line to corrupt\n";
    return cpc::cli::kExitError;
  }
  hierarchy.validate();  // throws InvariantViolation → exit 4
  std::cerr << "error: corrupted metadata passed validation\n";
  return cpc::cli::kExitError;
}

cpc::sim::BenchReport load_baseline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw cpc::cli::BadInput("cannot open baseline report '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return cpc::sim::BenchReport::from_json(
        cpc::sim::JsonValue::parse(text.str()));
  } catch (const cpc::sim::JsonError& error) {
    throw cpc::cli::BadInput("baseline report '" + path +
                             "': " + error.what());
  }
}

void apply_handicap(cpc::sim::BenchReport& report, double handicap) {
  if (handicap == 1.0) return;
  for (cpc::sim::BenchSuiteResult& suite : report.suites) {
    suite.wall_seconds *= handicap;
    suite.ops_per_second /= handicap;
    for (double& repeat : suite.repeat_ops_per_second) repeat /= handicap;
    for (cpc::sim::BenchJobRecord& job : suite.jobs) {
      job.wall_seconds *= handicap;
      job.ops_per_second /= handicap;
    }
  }
}

void print_summary(const cpc::sim::BenchReport& report) {
  std::cout.precision(4);
  for (const cpc::sim::BenchSuiteResult& suite : report.suites) {
    std::cout << suite.name << ": " << suite.median_ops_per_second() / 1e6
              << "M ops/s (" << suite.jobs.size() << " jobs, "
              << suite.committed_total << " ops, median of "
              << suite.repeat_ops_per_second.size() << ")\n";
  }
  std::cout << "peak RSS: " << report.rss_peak_bytes / (1024.0 * 1024.0)
            << " MiB, threads: " << report.threads << "\n";
}

int run(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    print_usage(std::cerr);
    return cpc::cli::kExitUsage;
  }
  if (options.help) {
    print_usage(std::cout);
    return cpc::cli::kExitOk;
  }
  if (options.trip_invariant) {
    return trip_invariant();
  }

  // Load the baseline *before* the (multi-second) measurement so a bad path
  // fails fast.
  cpc::sim::BenchReport baseline;
  if (!options.check_path.empty()) {
    baseline = load_baseline(options.check_path);
  }

  cpc::sim::BenchReport report = cpc::sim::run_bench_suites(options.run);
  apply_handicap(report, options.handicap);
  print_summary(report);

  if (!options.out_path.empty()) {
    std::ofstream out(options.out_path, std::ios::binary);
    if (!out) {
      throw cpc::cli::BadInput("cannot write report to '" + options.out_path +
                               "'");
    }
    out << report.to_json().dump();
    if (!out.flush()) {
      throw std::runtime_error("short write to '" + options.out_path + "'");
    }
  }

  if (!options.check_path.empty()) {
    const cpc::sim::GateResult gate =
        cpc::sim::perf_gate(baseline, report, options.min_ratio);
    for (const std::string& line : gate.lines) {
      std::cout << "gate: " << line << "\n";
    }
    if (!gate.ok) {
      std::cerr << "cpc_bench: performance regression — median ops/sec fell "
                   "below "
                << options.min_ratio << "x the baseline\n";
      return cpc::cli::kExitError;
    }
  }
  return cpc::cli::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  return cpc::cli::guarded_main([&] { return run(argc, argv); });
}
