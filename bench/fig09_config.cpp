// Reproduces paper Figure 9: the baseline experimental setup table, printed
// from the live configuration structs so the report always matches the code.

#include <iostream>

#include "cache/config.hpp"
#include "compress/gate_model.hpp"
#include "cpu/core_config.hpp"

int main() {
  using namespace cpc;
  const cpu::CoreConfig core;
  const cache::HierarchyConfig base = cache::kBaselineConfig;
  const cache::HierarchyConfig hac = cache::kHigherAssocConfig;

  std::cout << "Figure 9: baseline experimental setup\n";
  std::cout << "  Issue width             " << core.issue_width << " issue, OO\n";
  std::cout << "  IFQ size                " << core.ifq_size << " instr.\n";
  std::cout << "  Branch predictor        Bimod (" << core.bimod_entries
            << " entries)\n";
  std::cout << "  LD/ST queue             " << core.lsq_size << " entry\n";
  std::cout << "  Window (RUU) size       " << core.window_size
            << " (SimpleScalar default; not listed in Fig. 9)\n";
  std::cout << "  Func. units             " << core.int_alu_units << " ALUs, "
            << core.int_mult_units << " Mult/Div, " << core.mem_ports
            << " Mem ports, " << core.fp_alu_units << " FALU, "
            << core.fp_mult_units << " FMult/FDiv\n";
  std::cout << "  I-cache hit latency     " << core.icache_hit_latency << " cycle\n";
  std::cout << "  I-cache miss latency    " << core.icache_miss_latency << " cycles\n";
  std::cout << "  L1 D-cache hit latency  " << base.latency.l1_hit << " cycle\n";
  std::cout << "  L1 D-cache miss latency " << base.latency.l2_hit << " cycles\n";
  std::cout << "  Memory access latency   " << base.latency.memory
            << " cycles (L2 cache miss latency)\n";
  std::cout << '\n';
  std::cout << "Cache configurations (section 4.1):\n";
  std::cout << "  BC/BCC/BCP/CPP L1: " << base.l1.size_bytes / 1024 << "K, "
            << base.l1.ways << "-way, " << base.l1.line_bytes << " B lines ("
            << base.l1.num_sets() << " sets)\n";
  std::cout << "  BC/BCC/BCP/CPP L2: " << base.l2.size_bytes / 1024 << "K, "
            << base.l2.ways << "-way, " << base.l2.line_bytes << " B lines ("
            << base.l2.num_sets() << " sets)\n";
  std::cout << "  HAC L1: " << hac.l1.size_bytes / 1024 << "K " << hac.l1.ways
            << "-way;  HAC L2: " << hac.l2.size_bytes / 1024 << "K " << hac.l2.ways
            << "-way\n";
  std::cout << "  BCP prefetch buffers: " << cache::kL1PrefetchEntries
            << "-entry (L1), " << cache::kL2PrefetchEntries
            << "-entry (L2), fully associative, LRU\n";
  std::cout << '\n';
  std::cout << "Compression logic (Fig. 8): compressor "
            << compress::compressor_gate_delay(compress::kPaperScheme)
            << " gate levels, decompressor "
            << compress::decompressor_gate_delay(compress::kPaperScheme)
            << " gate levels\n";
  return 0;
}
