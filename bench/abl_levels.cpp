// Ablation: partial-line prefetching per cache level. The paper enables the
// mechanism at both L1 and L2 (§3.1); this harness isolates each level's
// contribution: both / L1 only / L2 only / neither (the "neither" variant
// is protocol-equivalent to BC and anchors the comparison).

#include <iostream>

#include "bench_common.hpp"
#include "core/cpp_hierarchy.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  struct Level {
    const char* label;
    bool l1, l2;
  };
  const std::vector<Level> levels = {
      {"both", true, true}, {"L1 only", true, false},
      {"L2 only", false, true}, {"neither", false, false}};

  std::vector<bench::Variant> variants;
  for (const Level& level : levels) {
    variants.push_back({level.label,
                        [level] {
                          core::CppHierarchy::Options o;
                          o.prefetch_l1 = level.l1;
                          o.prefetch_l2 = level.l2;
                          return std::make_unique<core::CppHierarchy>(o);
                        }});
  }
  const auto grid = bench::run_variant_grid(options, variants);

  stats::Table cycles("Ablation: CPP level — execution time vs neither (%)",
                      {"both", "L1 only", "L2 only", "neither"});
  stats::Table traffic("Ablation: CPP level — memory traffic vs neither (%)",
                       {"both", "L1 only", "L2 only", "neither"});
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    const double base_cycles = grid[w].back().run.cycles();
    const double base_traffic = grid[w].back().run.traffic_words();
    std::vector<double> c_cells, t_cells;
    for (const sim::JobResult& result : grid[w]) {
      c_cells.push_back(result.run.cycles() / base_cycles * 100.0);
      t_cells.push_back(base_traffic == 0.0
                            ? 0.0
                            : result.run.traffic_words() / base_traffic * 100.0);
    }
    cycles.add_row(options.workloads[w].name, std::move(c_cells));
    traffic.add_row(options.workloads[w].name, std::move(t_cells));
  }
  cycles.add_mean_row();
  traffic.add_mean_row();
  std::cout << cycles.to_ascii(1) << '\n' << traffic.to_ascii(1) << '\n';
  std::cout << "Expectation: the levels compose — 'both' dominates on average,\n"
               "and 'neither' reproduces BC exactly (100.0 in every cell).\n";
  return 0;
}
