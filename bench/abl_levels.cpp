// Ablation: partial-line prefetching per cache level. The paper enables the
// mechanism at both L1 and L2 (§3.1); this harness isolates each level's
// contribution: both / L1 only / L2 only / neither (the "neither" variant
// is protocol-equivalent to BC and anchors the comparison).

#include <iostream>

#include "core/cpp_hierarchy.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  struct Variant {
    const char* label;
    bool l1, l2;
  };
  const std::vector<Variant> variants = {
      {"both", true, true}, {"L1 only", true, false},
      {"L2 only", false, true}, {"neither", false, false}};

  stats::Table cycles("Ablation: CPP level — execution time vs neither (%)",
                      {"both", "L1 only", "L2 only", "neither"});
  stats::Table traffic("Ablation: CPP level — memory traffic vs neither (%)",
                       {"both", "L1 only", "L2 only", "neither"});
  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    double base_cycles = 0.0, base_traffic = 0.0;
    std::vector<double> c_cells, t_cells;
    for (const Variant& v : variants) {
      core::CppHierarchy::Options o;
      o.prefetch_l1 = v.l1;
      o.prefetch_l2 = v.l2;
      core::CppHierarchy h(o);
      const sim::RunResult r = sim::run_trace_on(trace, h);
      if (std::string(v.label) == "neither") {
        base_cycles = r.cycles();
        base_traffic = r.traffic_words();
      }
      c_cells.push_back(r.cycles());
      t_cells.push_back(r.traffic_words());
    }
    for (double& c : c_cells) c = c / base_cycles * 100.0;
    for (double& t : t_cells) t = base_traffic == 0.0 ? 0.0 : t / base_traffic * 100.0;
    cycles.add_row(wl.name, std::move(c_cells));
    traffic.add_row(wl.name, std::move(t_cells));
  }
  cycles.add_mean_row();
  traffic.add_mean_row();
  std::cout << cycles.to_ascii(1) << '\n' << traffic.to_ascii(1) << '\n';
  std::cout << "Expectation: the levels compose — 'both' dominates on average,\n"
               "and 'neither' reproduces BC exactly (100.0 in every cell).\n";
  return 0;
}
