// Ablation: the affiliation mask. The paper fixes mask = 0x1 (next-line
// pairing = next-line prefetch, §3.1) but the design admits any XOR mask.
// This harness compares masks 0x1 / 0x2 / 0x4: wider strides pair lines
// that are less likely to be referenced together, so next-line should win.

#include <iostream>

#include "bench_common.hpp"
#include "core/cpp_hierarchy.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const std::vector<std::uint32_t> masks = {0x1, 0x2, 0x4};

  std::vector<bench::Variant> variants = {
      bench::config_variant(sim::ConfigKind::kBC)};
  for (std::uint32_t mask : masks) {
    variants.push_back({"mask 0x" + std::to_string(mask),
                        [mask] {
                          core::CppHierarchy::Options o;
                          o.affiliation_mask = mask;
                          return std::make_unique<core::CppHierarchy>(o);
                        }});
  }
  const auto grid = bench::run_variant_grid(options, variants);

  stats::Table cycles("Ablation: affiliation mask — execution time vs BC (%)",
                      {"mask 0x1", "mask 0x2", "mask 0x4"});
  stats::Table hits("Ablation: affiliation mask — affiliated hits (L1+L2)",
                    {"mask 0x1", "mask 0x2", "mask 0x4"});
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    const double bc = grid[w][0].run.cycles();
    std::vector<double> c_cells, h_cells;
    for (std::size_t m = 0; m < masks.size(); ++m) {
      const sim::RunResult& r = grid[w][m + 1].run;
      c_cells.push_back(r.cycles() / bc * 100.0);
      h_cells.push_back(static_cast<double>(r.hierarchy.l1_affiliated_hits +
                                            r.hierarchy.l2_affiliated_hits));
    }
    cycles.add_row(options.workloads[w].name, std::move(c_cells));
    hits.add_row(options.workloads[w].name, std::move(h_cells));
  }
  cycles.add_mean_row();
  hits.add_mean_row();
  std::cout << cycles.to_ascii(1) << '\n' << hits.to_ascii(0) << '\n';
  std::cout << "Expectation: mask 0x1 (the paper's choice) gives the most\n"
               "affiliated hits and the best time — spatial locality decays\n"
               "with stride.\n";
  return 0;
}
