// Ablation: the affiliation mask. The paper fixes mask = 0x1 (next-line
// pairing = next-line prefetch, §3.1) but the design admits any XOR mask.
// This harness compares masks 0x1 / 0x2 / 0x4: wider strides pair lines
// that are less likely to be referenced together, so next-line should win.

#include <iostream>

#include "core/cpp_hierarchy.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const std::vector<std::uint32_t> masks = {0x1, 0x2, 0x4};

  stats::Table cycles("Ablation: affiliation mask — execution time vs BC (%)",
                      {"mask 0x1", "mask 0x2", "mask 0x4"});
  stats::Table hits("Ablation: affiliation mask — affiliated hits (L1+L2)",
                    {"mask 0x1", "mask 0x2", "mask 0x4"});
  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    const double bc = sim::run_trace(trace, sim::ConfigKind::kBC).cycles();
    std::vector<double> c_cells, h_cells;
    for (std::uint32_t mask : masks) {
      core::CppHierarchy::Options o;
      o.affiliation_mask = mask;
      core::CppHierarchy h(o);
      const sim::RunResult r = sim::run_trace_on(trace, h);
      c_cells.push_back(r.cycles() / bc * 100.0);
      h_cells.push_back(static_cast<double>(r.hierarchy.l1_affiliated_hits +
                                            r.hierarchy.l2_affiliated_hits));
    }
    cycles.add_row(wl.name, std::move(c_cells));
    hits.add_row(wl.name, std::move(h_cells));
  }
  cycles.add_mean_row();
  hits.add_mean_row();
  std::cout << cycles.to_ascii(1) << '\n' << hits.to_ascii(0) << '\n';
  std::cout << "Expectation: mask 0x1 (the paper's choice) gives the most\n"
               "affiliated hits and the best time — spatial locality decays\n"
               "with stride.\n";
  return 0;
}
