// Google-benchmark microbenchmarks of the simulator's hot paths: the
// compressor/decompressor, single-level cache operations, the CPP lookup
// path, and end-to-end simulation throughput. These measure *simulator*
// performance (host ops/sec), not simulated latency — useful when sizing
// experiment sweeps.

#include <benchmark/benchmark.h>

#include "cache/baseline_hierarchy.hpp"
#include "compress/scheme.hpp"
#include "core/cpp_hierarchy.hpp"
#include "sim/experiment.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace cpc;

void BM_Compress(benchmark::State& state) {
  const compress::Scheme scheme;
  std::uint32_t value = 0, addr = 0x1000'0000;
  for (auto _ : state) {
    value = value * 1664525u + 1013904223u;
    addr += 4;
    benchmark::DoNotOptimize(scheme.compress(value, addr));
  }
}
BENCHMARK(BM_Compress);

void BM_Decompress(benchmark::State& state) {
  const compress::Scheme scheme;
  const compress::CompressedWord cw = *scheme.compress(1234, 0x1000'0000);
  std::uint32_t addr = 0x1000'0000;
  for (auto _ : state) {
    addr += 4;
    benchmark::DoNotOptimize(scheme.decompress(cw, addr));
  }
}
BENCHMARK(BM_Decompress);

void BM_Classify(benchmark::State& state) {
  const compress::Scheme scheme;
  std::uint32_t value = 0;
  for (auto _ : state) {
    value = value * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(scheme.classify(value, 0x1000'0000));
  }
}
BENCHMARK(BM_Classify);

void BM_BaselineHierarchyAccess(benchmark::State& state) {
  auto h = cache::BaselineHierarchy::make_bc();
  std::uint32_t lcg = 1, v = 0;
  for (auto _ : state) {
    lcg = lcg * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(h.read(0x1000'0000u + (lcg % 0x40000u & ~3u), v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineHierarchyAccess);

void BM_CppHierarchyAccess(benchmark::State& state) {
  core::CppHierarchy h;
  std::uint32_t lcg = 1, v = 0;
  for (auto _ : state) {
    lcg = lcg * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(h.read(0x1000'0000u + (lcg % 0x40000u & ~3u), v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CppHierarchyAccess);

void BM_TraceGeneration(benchmark::State& state) {
  const workload::Workload& wl = workload::find_workload("olden.treeadd");
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate(wl, {50'000, 0x5eed}));
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_TraceGeneration);

void BM_EndToEndSimulation(benchmark::State& state) {
  const auto trace = workload::generate(workload::find_workload("olden.mst"),
                                        {50'000, 0x5eed});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_trace(trace, sim::ConfigKind::kCPP));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_EndToEndSimulation);

}  // namespace

BENCHMARK_MAIN();
