// Reproduces paper Figure 12: L1 data-cache misses per configuration,
// normalised to BC (= 100). Prefetch-buffer hits are not misses (§4.4).

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const auto rows = bench::run_sweep(
      options, {sim::kAllConfigs, sim::kAllConfigs + std::size(sim::kAllConfigs)});

  stats::Table table = bench::normalised_table(
      "Figure 12: L1 data cache misses normalised to BC (%)", rows,
      bench::paper_config_names(),
      [](const sim::RunResult& r) { return r.l1_misses(); });
  bench::emit(table, "fig12_l1miss_normalised");

  stats::Table rates = bench::absolute_table(
      "L1 miss rate (%)", rows, bench::paper_config_names(),
      [](const sim::RunResult& r) { return r.hierarchy.l1_miss_rate() * 100.0; });
  bench::emit(rates, "fig12_l1miss_rate", 2);

  std::cout << "Paper reference: prefetching (BCP, CPP) reduces misses vs BC;\n"
               "the paper reports a 14% average miss-rate reduction for CPP.\n";
  return 0;
}
