// Reproduces paper Figure 15: average ready-queue length in cycles with at
// least one outstanding cache miss, CPP relative to HAC. Paper reference:
// up to 78% improvement for the benchmarks with significant importance
// reduction — when CPP misses, the pipeline still has work to do.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const auto rows = bench::run_sweep(options, {sim::ConfigKind::kHAC,
                                               sim::ConfigKind::kCPP});

  stats::Table table(
      "Figure 15: average ready-queue length during outstanding-miss cycles",
      {"HAC", "CPP", "CPP increase %"});
  for (const bench::SweepRow& row : rows) {
    const double hac = row.by_config.at("HAC").core.avg_ready_queue_in_miss_cycles();
    const double cpp = row.by_config.at("CPP").core.avg_ready_queue_in_miss_cycles();
    const double increase = hac == 0.0 ? 0.0 : (cpp / hac - 1.0) * 100.0;
    table.add_row(row.workload.name, {hac, cpp, increase});
  }
  table.add_mean_row();

  bench::emit(table, "fig15_readyqueue", 2);
  std::cout << "Paper reference: queue-length improvement of up to 78% for the\n"
               "benchmarks with significant miss-importance reduction.\n";
  return 0;
}
