// Ablation: memory latency sensitivity. The paper's motivation ("off-chip
// accesses can take hundreds of cycles") implies CPP's benefit should grow
// with the CPU-memory gap. Sweep the L2-miss latency (50/100/200/400) and
// report CPP's speedup over BC at each point.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const std::vector<unsigned> latencies = {50, 100, 200, 400};

  // Two jobs (BC, CPP) per latency point per workload.
  std::vector<bench::Variant> variants;
  for (unsigned memory_latency : latencies) {
    cache::LatencyConfig lat;
    lat.memory = memory_latency;
    bench::Variant bc = bench::config_variant(sim::ConfigKind::kBC, {}, lat);
    bc.label += "@" + std::to_string(memory_latency);
    bench::Variant cpp = bench::config_variant(sim::ConfigKind::kCPP, {}, lat);
    cpp.label += "@" + std::to_string(memory_latency);
    variants.push_back(std::move(bc));
    variants.push_back(std::move(cpp));
  }
  const auto grid = bench::run_variant_grid(options, variants);

  stats::Table table("Ablation: CPP speedup over BC (%) vs memory latency",
                     {"50 cyc", "100 cyc (paper)", "200 cyc", "400 cyc"});
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    std::vector<double> cells;
    for (std::size_t l = 0; l < latencies.size(); ++l) {
      const double bc = grid[w][2 * l].run.cycles();
      const double cpp = grid[w][2 * l + 1].run.cycles();
      cells.push_back((bc / cpp - 1.0) * 100.0);
    }
    table.add_row(options.workloads[w].name, std::move(cells));
  }
  table.add_mean_row();

  std::cout << table.to_ascii(2) << '\n';
  std::cout << "Expectation: the speedup column grows with memory latency —\n"
               "hiding misses is worth more when misses cost more.\n";
  return 0;
}
