// Ablation: memory latency sensitivity. The paper's motivation ("off-chip
// accesses can take hundreds of cycles") implies CPP's benefit should grow
// with the CPU-memory gap. Sweep the L2-miss latency (50/100/200/400) and
// report CPP's speedup over BC at each point.

#include <iostream>

#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const std::vector<unsigned> latencies = {50, 100, 200, 400};

  stats::Table table("Ablation: CPP speedup over BC (%) vs memory latency",
                     {"50 cyc", "100 cyc (paper)", "200 cyc", "400 cyc"});
  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    std::vector<double> cells;
    for (unsigned memory_latency : latencies) {
      cache::LatencyConfig lat;
      lat.memory = memory_latency;
      const sim::RunResult bc = sim::run_trace(trace, sim::ConfigKind::kBC, {}, lat);
      const sim::RunResult cpp = sim::run_trace(trace, sim::ConfigKind::kCPP, {}, lat);
      cells.push_back((bc.cycles() / cpp.cycles() - 1.0) * 100.0);
    }
    table.add_row(wl.name, std::move(cells));
  }
  table.add_mean_row();

  std::cout << table.to_ascii(2) << '\n';
  std::cout << "Expectation: the speedup column grows with memory latency —\n"
               "hiding misses is worth more when misses cost more.\n";
  return 0;
}
