// Ablation: the compressed width. The paper argues 16 bits "strikes a good
// balance" (§2.1). Narrower schemes (8/12 bits) qualify fewer values, so
// less can be prefetched; anything wider than 16 bits cannot pack two
// values into one 32-bit slot, so 16 is the widest width compatible with
// the 2-into-1 layout. We sweep 8 / 12 / 16 and report both classification
// coverage and end-to-end execution time.

#include <iostream>

#include "compress/classification_stats.hpp"
#include "core/cpp_hierarchy.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const std::vector<unsigned> widths = {8, 12, 16};

  stats::Table cycles("Ablation: compressed width — execution time vs BC (%)",
                      {"8-bit", "12-bit", "16-bit"});
  stats::Table coverage("Ablation: compressed width — compressible accesses (%)",
                        {"8-bit", "12-bit", "16-bit"});
  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    const double bc = sim::run_trace(trace, sim::ConfigKind::kBC).cycles();
    std::vector<double> c_cells, v_cells;
    for (unsigned width : widths) {
      core::CppHierarchy::Options o;
      o.scheme = compress::Scheme{width};
      core::CppHierarchy h(o);
      const sim::RunResult r = sim::run_trace_on(trace, h);
      c_cells.push_back(r.cycles() / bc * 100.0);

      compress::ClassificationStats stats{compress::Scheme{width}};
      for (const cpu::MicroOp& op : trace) {
        if (cpu::is_memory_op(op.kind)) stats.record(op.value, op.addr);
      }
      v_cells.push_back(stats.compressible_fraction() * 100.0);
    }
    cycles.add_row(wl.name, std::move(c_cells));
    coverage.add_row(wl.name, std::move(v_cells));
  }
  cycles.add_mean_row();
  coverage.add_mean_row();
  std::cout << coverage.to_ascii(1) << '\n' << cycles.to_ascii(1) << '\n';
  std::cout << "Expectation: coverage (and with it prefetch benefit) grows\n"
               "with width; 16 bits is the widest form two of which still\n"
               "share one 32-bit slot — the paper's sweet spot.\n";
  return 0;
}
