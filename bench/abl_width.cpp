// Ablation: the compressed width. The paper argues 16 bits "strikes a good
// balance" (§2.1). Narrower schemes (8/12 bits) qualify fewer values, so
// less can be prefetched; anything wider than 16 bits cannot pack two
// values into one 32-bit slot, so 16 is the widest width compatible with
// the 2-into-1 layout. We sweep 8 / 12 / 16 and report both classification
// coverage and end-to-end execution time.

#include <iostream>

#include "bench_common.hpp"
#include "compress/classification_stats.hpp"
#include "core/cpp_hierarchy.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const std::vector<unsigned> widths = {8, 12, 16};

  std::vector<bench::Variant> variants = {
      bench::config_variant(sim::ConfigKind::kBC)};
  for (unsigned width : widths) {
    variants.push_back({std::to_string(width) + "-bit",
                        [width] {
                          core::CppHierarchy::Options o;
                          o.codec = compress::Codec{compress::Scheme{width}};
                          return std::make_unique<core::CppHierarchy>(o);
                        }});
  }
  const auto grid = bench::run_variant_grid(options, variants);

  // Classification coverage needs only the traces, not simulations.
  std::vector<std::vector<double>> v_rows(options.workloads.size());
  bench::for_each_trace(
      options, [&](std::size_t i, const workload::Workload&,
                   const cpu::Trace& trace) {
        for (unsigned width : widths) {
          compress::ClassificationStats stats{compress::Scheme{width}};
          for (const cpu::MicroOp& op : trace) {
            if (cpu::is_memory_op(op.kind)) stats.record(op.value, op.addr);
          }
          v_rows[i].push_back(stats.compressible_fraction() * 100.0);
        }
      });

  stats::Table cycles("Ablation: compressed width — execution time vs BC (%)",
                      {"8-bit", "12-bit", "16-bit"});
  stats::Table coverage("Ablation: compressed width — compressible accesses (%)",
                        {"8-bit", "12-bit", "16-bit"});
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    const double bc = grid[w][0].run.cycles();
    std::vector<double> c_cells;
    for (std::size_t k = 0; k < widths.size(); ++k) {
      c_cells.push_back(grid[w][k + 1].run.cycles() / bc * 100.0);
    }
    cycles.add_row(options.workloads[w].name, std::move(c_cells));
    coverage.add_row(options.workloads[w].name, std::move(v_rows[w]));
  }
  cycles.add_mean_row();
  coverage.add_mean_row();
  std::cout << coverage.to_ascii(1) << '\n' << cycles.to_ascii(1) << '\n';
  std::cout << "Expectation: coverage (and with it prefetch benefit) grows\n"
               "with width; 16 bits is the widest form two of which still\n"
               "share one 32-bit slot — the paper's sweet spot.\n";
  return 0;
}
