#pragma once
// Shared machinery for the figure-reproduction harnesses: run every
// workload through a set of configurations once and tabulate a metric
// normalised to BC, exactly the way the paper's figures present data.
//
// Every harness honours:
//   CPC_TRACE_OPS   trace length per workload (default 600000)
//   CPC_WORKLOADS   comma-separated workload filter
//   CPC_SEED        workload generator seed
//   CPC_CSV         directory to additionally write each table as CSV
//   CPC_SEEDS       run each workload with N consecutive seeds and report
//                   aggregate counts (ratios become ratios-of-sums)

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "stats/table.hpp"

namespace cpc::bench {

struct SweepRow {
  workload::Workload workload;
  std::map<std::string, sim::RunResult> by_config;  // key: config name
};

/// Accumulates the additive counters of `from` into `into` (used for
/// multi-seed aggregation; ratios over sums are seed-weighted means).
inline void accumulate(sim::RunResult& into, const sim::RunResult& from) {
  into.core.cycles += from.core.cycles;
  into.core.committed += from.core.committed;
  into.core.miss_cycles += from.core.miss_cycles;
  into.core.ready_sum_miss_cycles += from.core.ready_sum_miss_cycles;
  into.core.ready_sum_all_cycles += from.core.ready_sum_all_cycles;
  into.core.ops_depending_on_miss += from.core.ops_depending_on_miss;
  into.core.value_mismatches += from.core.value_mismatches;
  into.hierarchy.reads += from.hierarchy.reads;
  into.hierarchy.writes += from.hierarchy.writes;
  into.hierarchy.l1_misses += from.hierarchy.l1_misses;
  into.hierarchy.l2_misses += from.hierarchy.l2_misses;
  into.hierarchy.l1_affiliated_hits += from.hierarchy.l1_affiliated_hits;
  into.hierarchy.l2_affiliated_hits += from.hierarchy.l2_affiliated_hits;
  into.hierarchy.l1_pbuf_hits += from.hierarchy.l1_pbuf_hits;
  into.hierarchy.l2_pbuf_hits += from.hierarchy.l2_pbuf_hits;
  into.hierarchy.traffic.merge(from.hierarchy.traffic);
}

/// Runs every selected workload on every requested configuration.
/// Progress goes to stderr so stdout stays a clean report.
inline std::vector<SweepRow> run_sweep(const sim::BenchOptions& options,
                                       std::vector<sim::ConfigKind> configs) {
  unsigned seeds = 1;
  if (const char* env = std::getenv("CPC_SEEDS")) {
    seeds = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (seeds == 0) seeds = 1;
  }
  std::vector<SweepRow> rows;
  for (const workload::Workload& wl : options.workloads) {
    SweepRow row{wl, {}};
    for (unsigned s = 0; s < seeds; ++s) {
      workload::WorkloadParams params = options.params();
      params.seed += s;
      std::cerr << "  generating " << wl.name << " (" << options.trace_ops
                << " ops, seed " << params.seed << ")...\n";
      const cpu::Trace trace = workload::generate(wl, params);
      for (sim::ConfigKind kind : configs) {
        std::cerr << "    " << sim::config_name(kind) << "...";
        sim::RunResult r = sim::run_trace(trace, kind);
        std::cerr << " " << r.core.cycles << " cycles\n";
        if (r.core.value_mismatches != 0) {
          std::cerr << "FATAL: value mismatches in " << wl.name << "/" << r.config
                    << "\n";
          std::exit(1);
        }
        auto it = row.by_config.find(r.config);
        if (it == row.by_config.end()) {
          row.by_config.emplace(r.config, std::move(r));
        } else {
          accumulate(it->second, r);
        }
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Builds the paper-style normalised table: one row per benchmark, one
/// column per configuration, each cell = metric(config) / metric(BC) * 100.
inline stats::Table normalised_table(
    const std::string& title, const std::vector<SweepRow>& rows,
    const std::vector<std::string>& configs,
    const std::function<double(const sim::RunResult&)>& metric) {
  stats::Table table(title, configs);
  for (const SweepRow& row : rows) {
    const double base = metric(row.by_config.at("BC"));
    std::vector<double> cells;
    for (const std::string& config : configs) {
      const double value = metric(row.by_config.at(config));
      cells.push_back(base == 0.0 ? 0.0 : value / base * 100.0);
    }
    table.add_row(row.workload.name, std::move(cells));
  }
  table.add_mean_row();
  return table;
}

/// Absolute-valued table (no normalisation).
inline stats::Table absolute_table(
    const std::string& title, const std::vector<SweepRow>& rows,
    const std::vector<std::string>& configs,
    const std::function<double(const sim::RunResult&)>& metric) {
  stats::Table table(title, configs);
  for (const SweepRow& row : rows) {
    std::vector<double> cells;
    for (const std::string& config : configs) {
      cells.push_back(metric(row.by_config.at(config)));
    }
    table.add_row(row.workload.name, std::move(cells));
  }
  table.add_mean_row();
  return table;
}

inline const std::vector<std::string>& paper_config_names() {
  static const std::vector<std::string> names = {"BC", "BCC", "HAC", "BCP", "CPP"};
  return names;
}

/// Prints the table to stdout and, when CPC_CSV names a directory, also
/// writes `<dir>/<slug>.csv` for plotting.
inline void emit(const stats::Table& table, const std::string& slug,
                 int precision = 1) {
  std::cout << table.to_ascii(precision) << '\n';
  if (const char* dir = std::getenv("CPC_CSV")) {
    const std::string path = std::string(dir) + "/" + slug + ".csv";
    std::ofstream out(path);
    if (out) {
      out << table.to_csv();
      std::cerr << "  wrote " << path << '\n';
    } else {
      std::cerr << "  could not write " << path << '\n';
    }
  }
}

}  // namespace cpc::bench
