#pragma once
// Shared machinery for the figure-reproduction harnesses: enumerate the
// (configuration × workload × seed) grid into jobs, execute them on the
// shared SweepRunner thread pool, and tabulate a metric normalised to BC,
// exactly the way the paper's figures present data. Results are merged in
// job-index order, so output is bit-identical at any thread count.
//
// Every harness honours:
//   CPC_TRACE_OPS   trace length per workload (default 600000)
//   CPC_WORKLOADS   comma-separated workload filter
//   CPC_SEED        workload generator seed
//   CPC_JOBS        worker threads (default: hardware concurrency)
//   CPC_CSV         directory to additionally write each table as CSV
//   CPC_SEEDS       run each workload with N consecutive seeds and report
//                   aggregate counts (ratios become ratios-of-sums)
//   CPC_SWEEP_JOURNAL
//                   checkpoint/resume journal for the config sweeps
//                   (fig10–15): a killed or failed sweep re-run with the
//                   same journal resumes instead of recomputing
//   CPC_CONTAIN     "1" runs the config sweeps fault-contained even
//                   without a journal (see docs/robustness.md);
//                   CPC_JOB_TIMEOUT_MS arms the per-job watchdog

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/job.hpp"
#include "sim/sweep_runner.hpp"
#include "stats/table.hpp"

namespace cpc::bench {

struct SweepRow {
  workload::Workload workload;
  std::map<std::string, sim::RunResult> by_config;  // key: config name
};

/// Accumulates the additive counters of `from` into `into` (used for
/// multi-seed aggregation; ratios over sums are seed-weighted means).
inline void accumulate(sim::RunResult& into, const sim::RunResult& from) {
  into.core.cycles += from.core.cycles;
  into.core.committed += from.core.committed;
  into.core.miss_cycles += from.core.miss_cycles;
  into.core.ready_sum_miss_cycles += from.core.ready_sum_miss_cycles;
  into.core.ready_sum_all_cycles += from.core.ready_sum_all_cycles;
  into.core.ops_depending_on_miss += from.core.ops_depending_on_miss;
  into.core.value_mismatches += from.core.value_mismatches;
  into.hierarchy.reads += from.hierarchy.reads;
  into.hierarchy.writes += from.hierarchy.writes;
  into.hierarchy.l1_misses += from.hierarchy.l1_misses;
  into.hierarchy.l2_misses += from.hierarchy.l2_misses;
  into.hierarchy.l1_affiliated_hits += from.hierarchy.l1_affiliated_hits;
  into.hierarchy.l2_affiliated_hits += from.hierarchy.l2_affiliated_hits;
  into.hierarchy.l1_pbuf_hits += from.hierarchy.l1_pbuf_hits;
  into.hierarchy.l2_pbuf_hits += from.hierarchy.l2_pbuf_hits;
  into.hierarchy.traffic.merge(from.hierarchy.traffic);
}

/// Exits the process if a run produced load-value mismatches (a corrupt
/// hierarchy would silently skew every figure).
inline void check_values(const std::string& workload, const sim::RunResult& r) {
  if (r.core.value_mismatches != 0) {
    std::cerr << "FATAL: value mismatches in " << workload << "/" << r.config
              << "\n";
    std::exit(1);
  }
}

/// Env-gated contained execution for the long figure sweeps: when
/// CPC_SWEEP_JOURNAL names a journal (or CPC_CONTAIN=1), jobs run
/// fault-contained — a failing job is reported, the rest of the grid still
/// completes and is checkpointed, and a re-run resumes from the journal. A
/// figure cannot be built from a partial grid, so failures still abort the
/// harness, but only after the journal holds every completed job.
inline std::vector<sim::JobResult> run_config_jobs(const sim::SweepRunner& runner,
                                                   std::vector<sim::Job> jobs) {
  const char* journal = std::getenv("CPC_SWEEP_JOURNAL");
  const char* contain = std::getenv("CPC_CONTAIN");
  const bool journaled = journal != nullptr && *journal != '\0';
  if (!journaled &&
      (contain == nullptr || *contain == '\0' || std::string(contain) == "0")) {
    return runner.run(std::move(jobs));
  }
  sim::RunOptions options = sim::RunOptions::from_env();
  if (journaled) options.journal_path = journal;
  sim::RunReport report = runner.run_contained(std::move(jobs), options);
  if (report.resumed > 0) {
    std::cerr << "resumed " << report.resumed << " job(s) from "
              << options.journal_path << '\n';
  }
  if (!report.all_ok()) {
    for (const sim::JobFailure& failure : report.failures) {
      std::cerr << "FATAL: job " << failure.index << " (" << failure.tag
                << ") failed" << (failure.timed_out ? " [timeout]" : "")
                << ": " << failure.what << '\n';
    }
    std::cerr << "cannot build a figure from a partial grid"
              << (journaled ? "; completed jobs will resume from the journal"
                            : "")
              << '\n';
    std::exit(1);
  }
  return std::move(report.results);
}

/// Runs every selected workload on every requested configuration through
/// the shared thread pool. Progress goes to stderr so stdout stays a clean
/// report.
inline std::vector<SweepRow> run_sweep(const sim::BenchOptions& options,
                                       std::vector<sim::ConfigKind> configs) {
  unsigned seeds = 1;
  if (const char* env = std::getenv("CPC_SEEDS")) {
    seeds = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (seeds == 0) seeds = 1;
  }

  std::vector<sim::Job> jobs;
  jobs.reserve(options.workloads.size() * seeds * configs.size());
  for (const workload::Workload& wl : options.workloads) {
    for (unsigned s = 0; s < seeds; ++s) {
      for (sim::ConfigKind kind : configs) {
        jobs.push_back(sim::make_config_job(wl, options.trace_ops,
                                            options.seed + s, kind));
      }
    }
  }

  sim::SweepRunner runner;
  std::cerr << "sweep: " << jobs.size() << " jobs on " << runner.threads()
            << " thread(s)\n";
  std::vector<sim::JobResult> results = run_config_jobs(runner, std::move(jobs));

  // Merge in job-index order: workload-major, then seed, then config — the
  // same order the old serial loops accumulated in.
  std::vector<SweepRow> rows;
  const std::size_t per_workload = seeds * configs.size();
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    SweepRow row{options.workloads[w], {}};
    for (std::size_t j = 0; j < per_workload; ++j) {
      sim::JobResult& result = results[w * per_workload + j];
      check_values(row.workload.name, result.run);
      auto it = row.by_config.find(result.run.config);
      if (it == row.by_config.end()) {
        row.by_config.emplace(result.run.config, std::move(result.run));
      } else {
        accumulate(it->second, result.run);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// One column of an ablation grid: a label plus the hierarchy/core the
/// column simulates on.
struct Variant {
  std::string label;
  sim::HierarchyFactory factory;
  cpu::CoreConfig core{};
};

/// Convenience: a Variant for one of the five paper configurations.
inline Variant config_variant(sim::ConfigKind kind,
                              const cpu::CoreConfig& core = {},
                              const cache::LatencyConfig& latency = {}) {
  return Variant{sim::config_name(kind),
                 [kind, latency] { return sim::make_hierarchy(kind, latency); },
                 core};
}

/// A Variant for one (config, codec) cell. Under the paper codec this is
/// config_variant exactly — same label, same hierarchy — so codec grids
/// keep the legacy column for free.
inline Variant config_codec_variant(sim::ConfigKind kind,
                                    compress::Codec codec,
                                    const cpu::CoreConfig& core = {},
                                    const cache::LatencyConfig& latency = {}) {
  return Variant{sim::config_codec_tag(kind, codec),
                 [kind, codec, latency] {
                   return sim::make_hierarchy(kind, codec, latency);
                 },
                 core};
}

/// Expands a (config × codec) grid into variants, config-major — the same
/// cell order as net::JobGrid, cpc_run --sweep and the cpc_serve executor,
/// so tables and journals line up across harnesses.
inline std::vector<Variant> codec_grid_variants(
    const std::vector<sim::ConfigKind>& configs,
    const std::vector<compress::CodecKind>& codecs,
    const cpu::CoreConfig& core = {},
    const cache::LatencyConfig& latency = {}) {
  std::vector<Variant> variants;
  variants.reserve(configs.size() * codecs.size());
  for (const sim::ConfigKind kind : configs) {
    for (const compress::CodecKind codec : codecs) {
      variants.push_back(
          config_codec_variant(kind, compress::Codec{codec}, core, latency));
    }
  }
  return variants;
}

/// Runs the full workload × variant grid on the shared pool and returns
/// results indexed [workload][variant] in the submitted order.
inline std::vector<std::vector<sim::JobResult>> run_variant_grid(
    const sim::BenchOptions& options, const std::vector<Variant>& variants) {
  std::vector<sim::Job> jobs;
  jobs.reserve(options.workloads.size() * variants.size());
  for (const workload::Workload& wl : options.workloads) {
    for (const Variant& variant : variants) {
      sim::Job job;
      job.workload = wl;
      job.trace_ops = options.trace_ops;
      job.seed = options.seed;
      job.make_hierarchy = variant.factory;
      job.core_config = variant.core;
      job.tag = variant.label;
      jobs.push_back(std::move(job));
    }
  }

  sim::SweepRunner runner;
  std::cerr << "grid: " << jobs.size() << " jobs on " << runner.threads()
            << " thread(s)\n";
  std::vector<sim::JobResult> flat = runner.run(std::move(jobs));

  std::vector<std::vector<sim::JobResult>> grid(options.workloads.size());
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    auto first = flat.begin() + static_cast<std::ptrdiff_t>(w * variants.size());
    grid[w].assign(std::make_move_iterator(first),
                   std::make_move_iterator(first + static_cast<std::ptrdiff_t>(
                                                       variants.size())));
    for (const sim::JobResult& result : grid[w]) {
      check_values(options.workloads[w].name, result.run);
    }
  }
  return grid;
}

/// Parallelises trace-analysis harnesses (no simulation): generates each
/// workload's trace on the pool and invokes `fn(workload_index, workload,
/// trace)`. `fn` must only write state owned by its index; indices complete
/// in arbitrary order.
inline void for_each_trace(
    const sim::BenchOptions& options,
    const std::function<void(std::size_t, const workload::Workload&,
                             const cpu::Trace&)>& fn) {
  sim::SweepRunner runner;
  runner.parallel_for(options.workloads.size(), [&](std::size_t i) {
    const workload::Workload& wl = options.workloads[i];
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    fn(i, wl, trace);
  });
}

/// Builds the paper-style normalised table: one row per benchmark, one
/// column per configuration, each cell = metric(config) / metric(BC) * 100.
inline stats::Table normalised_table(
    const std::string& title, const std::vector<SweepRow>& rows,
    const std::vector<std::string>& configs,
    const std::function<double(const sim::RunResult&)>& metric) {
  stats::Table table(title, configs);
  for (const SweepRow& row : rows) {
    const double base = metric(row.by_config.at("BC"));
    std::vector<double> cells;
    for (const std::string& config : configs) {
      const double value = metric(row.by_config.at(config));
      cells.push_back(base == 0.0 ? 0.0 : value / base * 100.0);
    }
    table.add_row(row.workload.name, std::move(cells));
  }
  table.add_mean_row();
  return table;
}

/// Absolute-valued table (no normalisation).
inline stats::Table absolute_table(
    const std::string& title, const std::vector<SweepRow>& rows,
    const std::vector<std::string>& configs,
    const std::function<double(const sim::RunResult&)>& metric) {
  stats::Table table(title, configs);
  for (const SweepRow& row : rows) {
    std::vector<double> cells;
    for (const std::string& config : configs) {
      cells.push_back(metric(row.by_config.at(config)));
    }
    table.add_row(row.workload.name, std::move(cells));
  }
  table.add_mean_row();
  return table;
}

inline const std::vector<std::string>& paper_config_names() {
  static const std::vector<std::string> names = {"BC", "BCC", "HAC", "BCP", "CPP"};
  return names;
}

/// Prints the table to stdout and, when CPC_CSV names a directory, also
/// writes `<dir>/<slug>.csv` for plotting.
inline void emit(const stats::Table& table, const std::string& slug,
                 int precision = 1) {
  std::cout << table.to_ascii(precision) << '\n';
  if (const char* dir = std::getenv("CPC_CSV")) {
    const std::string path = std::string(dir) + "/" + slug + ".csv";
    std::ofstream out(path);
    if (out) {
      out << table.to_csv();
      std::cerr << "  wrote " << path << '\n';
    } else {
      std::cerr << "  could not write " << path << '\n';
    }
  }
}

}  // namespace cpc::bench
