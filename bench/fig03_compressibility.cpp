// Reproduces paper Figure 3: "Values encountered in memory accesses" —
// the percentage of dynamically accessed word values that are compressible
// small values, compressible pointers, or incompressible, per benchmark.
// Trace generation + classification runs per-workload on the sweep pool.
// The paper reports 59% compressible on average.

#include <iostream>

#include "bench_common.hpp"
#include "compress/classification_stats.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();

  stats::Table table(
      "Figure 3: dynamic value compressibility (% of word accesses)",
      {"small value", "pointer", "compressible", "incompressible"});

  std::vector<std::vector<double>> cells(options.workloads.size());
  bench::for_each_trace(
      options, [&](std::size_t i, const workload::Workload&,
                   const cpu::Trace& trace) {
        compress::ClassificationStats stats;
        for (const cpu::MicroOp& op : trace) {
          if (cpu::is_memory_op(op.kind)) stats.record(op.value, op.addr);
        }
        cells[i] = {stats.small_fraction() * 100.0,
                    stats.pointer_fraction() * 100.0,
                    stats.compressible_fraction() * 100.0,
                    (1.0 - stats.compressible_fraction()) * 100.0};
      });
  for (std::size_t i = 0; i < options.workloads.size(); ++i) {
    table.add_row(options.workloads[i].name, std::move(cells[i]));
  }
  table.add_mean_row();

  std::cout << table.to_ascii(1) << '\n';
  std::cout << "Paper reference: on average 59% of dynamically accessed values\n"
               "are compressible under this scheme (section 2.1, Fig. 3).\n";
  return 0;
}
