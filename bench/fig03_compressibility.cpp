// Reproduces paper Figure 3: "Values encountered in memory accesses" —
// the percentage of dynamically accessed word values that are compressible
// small values, compressible pointers, or incompressible, per benchmark.
// The paper reports 59% compressible on average.

#include <iostream>

#include "compress/classification_stats.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();

  stats::Table table(
      "Figure 3: dynamic value compressibility (% of word accesses)",
      {"small value", "pointer", "compressible", "incompressible"});

  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    compress::ClassificationStats stats;
    for (const cpu::MicroOp& op : trace) {
      if (cpu::is_memory_op(op.kind)) stats.record(op.value, op.addr);
    }
    table.add_row(wl.name, {stats.small_fraction() * 100.0,
                            stats.pointer_fraction() * 100.0,
                            stats.compressible_fraction() * 100.0,
                            (1.0 - stats.compressible_fraction()) * 100.0});
  }
  table.add_mean_row();

  std::cout << table.to_ascii(1) << '\n';
  std::cout << "Paper reference: on average 59% of dynamically accessed values\n"
               "are compressible under this scheme (section 2.1, Fig. 3).\n";
  return 0;
}
