// Reproduces paper Figure 14: the importance of cache misses, estimated as
// the fraction of instructions directly depending on them. Following §4.4,
// each configuration is run twice — at full and at halved miss penalty
// (S_enhanced = 2) — and Amdahl's law gives
//   Fraction_enhanced = S_enh * (1 - 1/S_overall) / (S_enh - 1).
// Both runs of every (workload, config) cell are independent jobs on the
// sweep pool. Paper reference: CPP reduces the importance parameter vs BC
// and HAC for most benchmarks.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  // BCC is omitted, as in the paper's figure: it is timing-identical to BC.
  const std::vector<sim::ConfigKind> kinds = {sim::ConfigKind::kBC,
                                              sim::ConfigKind::kHAC,
                                              sim::ConfigKind::kBCP,
                                              sim::ConfigKind::kCPP};

  const cache::LatencyConfig normal{};
  std::vector<bench::Variant> variants;
  for (sim::ConfigKind kind : kinds) {
    variants.push_back(bench::config_variant(kind, {}, normal));
    bench::Variant halved =
        bench::config_variant(kind, {}, normal.halved_miss_penalty());
    halved.label += "/half-penalty";
    variants.push_back(std::move(halved));
  }
  const auto grid = bench::run_variant_grid(options, variants);

  stats::Table table(
      "Figure 14: importance of cache misses (% of directly dependent instructions)",
      {"BC", "HAC", "BCP", "CPP"});
  stats::Table measured(
      "Directly measured miss dependence (% of ops consuming a missed load)",
      {"BC", "HAC", "BCP", "CPP"});
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    std::vector<double> cells, m_cells;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const sim::RunResult& slow = grid[w][2 * k].run;
      const sim::RunResult& fast = grid[w][2 * k + 1].run;
      const double s_overall = slow.cycles() / fast.cycles();
      constexpr double kSEnhanced = 2.0;  // miss penalty halved
      const double fraction_enhanced =
          kSEnhanced * (1.0 - 1.0 / s_overall) / (kSEnhanced - 1.0);
      cells.push_back(fraction_enhanced * 100.0);
      m_cells.push_back(slow.core.direct_miss_dependence_fraction() * 100.0);
    }
    table.add_row(options.workloads[w].name, std::move(cells));
    measured.add_row(options.workloads[w].name, std::move(m_cells));
  }
  table.add_mean_row();
  measured.add_mean_row();

  bench::emit(table, "fig14_importance");
  bench::emit(measured, "fig14_importance_measured");
  std::cout << "Paper reference: CPP lowers the importance parameter relative to\n"
               "BC/HAC for most benchmarks — its remaining misses block fewer\n"
               "dependent instructions (the compressible-word misses were the\n"
               "important ones, and those are the ones CPP prefetches).\n";
  return 0;
}
