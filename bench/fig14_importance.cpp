// Reproduces paper Figure 14: the importance of cache misses, estimated as
// the fraction of instructions directly depending on them. Following §4.4,
// each configuration is run twice — at full and at halved miss penalty
// (S_enhanced = 2) — and Amdahl's law gives
//   Fraction_enhanced = S_enh * (1 - 1/S_overall) / (S_enh - 1).
// Paper reference: CPP reduces the importance parameter vs BC and HAC for
// most benchmarks.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  // BCC is omitted, as in the paper's figure: it is timing-identical to BC.
  const std::vector<sim::ConfigKind> kinds = {sim::ConfigKind::kBC,
                                              sim::ConfigKind::kHAC,
                                              sim::ConfigKind::kBCP,
                                              sim::ConfigKind::kCPP};

  stats::Table table(
      "Figure 14: importance of cache misses (% of directly dependent instructions)",
      {"BC", "HAC", "BCP", "CPP"});
  stats::Table measured(
      "Directly measured miss dependence (% of ops consuming a missed load)",
      {"BC", "HAC", "BCP", "CPP"});
  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    std::vector<double> cells, m_cells;
    for (sim::ConfigKind kind : kinds) {
      std::cerr << "    " << sim::config_name(kind) << " (2 runs)...\n";
      const sim::ImportanceResult imp = sim::miss_importance(trace, kind);
      cells.push_back(imp.fraction_enhanced * 100.0);
      m_cells.push_back(imp.measured_direct_fraction * 100.0);
    }
    table.add_row(wl.name, std::move(cells));
    measured.add_row(wl.name, std::move(m_cells));
  }
  table.add_mean_row();
  measured.add_mean_row();

  bench::emit(table, "fig14_importance");
  bench::emit(measured, "fig14_importance_measured");
  std::cout << "Paper reference: CPP lowers the importance parameter relative to\n"
               "BC/HAC for most benchmarks — its remaining misses block fewer\n"
               "dependent instructions (the compressible-word misses were the\n"
               "important ones, and those are the ones CPP prefetches).\n";
  return 0;
}
