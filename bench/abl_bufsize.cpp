// Ablation: BCP prefetch-buffer capacity. The paper sizes BCP's buffers
// (8-entry L1, 32-entry L2) to match CPP's flag-bit hardware cost (§3.1).
// This harness asks how much buffer BCP needs before it stops losing to
// CPP on conflict-dominated programs — and what it pays in traffic.

#include <iostream>

#include "cache/prefetch_hierarchy.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  struct Variant {
    const char* label;
    std::uint32_t l1, l2;
  };
  const std::vector<Variant> variants = {
      {"BCP 8/32", 8, 32}, {"BCP 16/64", 16, 64}, {"BCP 32/128", 32, 128}};

  stats::Table cycles("Ablation: BCP buffer size — execution time vs BC (%)",
                      {"BCP 8/32", "BCP 16/64", "BCP 32/128", "CPP"});
  stats::Table traffic("Ablation: BCP buffer size — memory traffic vs BC (%)",
                       {"BCP 8/32", "BCP 16/64", "BCP 32/128", "CPP"});
  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    const sim::RunResult bc = sim::run_trace(trace, sim::ConfigKind::kBC);
    std::vector<double> c_cells, t_cells;
    for (const Variant& v : variants) {
      cache::PrefetchHierarchy h(cache::kBaselineConfig, v.l1, v.l2);
      const sim::RunResult r = sim::run_trace_on(trace, h);
      c_cells.push_back(r.cycles() / bc.cycles() * 100.0);
      t_cells.push_back(r.traffic_words() / bc.traffic_words() * 100.0);
    }
    const sim::RunResult cpp = sim::run_trace(trace, sim::ConfigKind::kCPP);
    c_cells.push_back(cpp.cycles() / bc.cycles() * 100.0);
    t_cells.push_back(cpp.traffic_words() / bc.traffic_words() * 100.0);
    cycles.add_row(wl.name, std::move(c_cells));
    traffic.add_row(wl.name, std::move(t_cells));
  }
  cycles.add_mean_row();
  traffic.add_mean_row();
  std::cout << cycles.to_ascii(1) << '\n' << traffic.to_ascii(1) << '\n';
  std::cout << "Expectation: bigger buffers help BCP's time but its traffic\n"
               "stays far above CPP's, which needs no buffer at all.\n";
  return 0;
}
