// Ablation: BCP prefetch-buffer capacity. The paper sizes BCP's buffers
// (8-entry L1, 32-entry L2) to match CPP's flag-bit hardware cost (§3.1).
// This harness asks how much buffer BCP needs before it stops losing to
// CPP on conflict-dominated programs — and what it pays in traffic.

#include <iostream>

#include "bench_common.hpp"
#include "cache/prefetch_hierarchy.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  struct Size {
    const char* label;
    std::uint32_t l1, l2;
  };
  const std::vector<Size> sizes = {
      {"BCP 8/32", 8, 32}, {"BCP 16/64", 16, 64}, {"BCP 32/128", 32, 128}};

  std::vector<bench::Variant> variants = {
      bench::config_variant(sim::ConfigKind::kBC)};
  for (const Size& size : sizes) {
    variants.push_back({size.label, [size] {
                          return std::make_unique<cache::PrefetchHierarchy>(
                              cache::kBaselineConfig, size.l1, size.l2);
                        }});
  }
  variants.push_back(bench::config_variant(sim::ConfigKind::kCPP));
  const auto grid = bench::run_variant_grid(options, variants);

  stats::Table cycles("Ablation: BCP buffer size — execution time vs BC (%)",
                      {"BCP 8/32", "BCP 16/64", "BCP 32/128", "CPP"});
  stats::Table traffic("Ablation: BCP buffer size — memory traffic vs BC (%)",
                       {"BCP 8/32", "BCP 16/64", "BCP 32/128", "CPP"});
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    const sim::RunResult& bc = grid[w][0].run;
    std::vector<double> c_cells, t_cells;
    for (std::size_t v = 1; v < variants.size(); ++v) {
      const sim::RunResult& r = grid[w][v].run;
      c_cells.push_back(r.cycles() / bc.cycles() * 100.0);
      t_cells.push_back(r.traffic_words() / bc.traffic_words() * 100.0);
    }
    cycles.add_row(options.workloads[w].name, std::move(c_cells));
    traffic.add_row(options.workloads[w].name, std::move(t_cells));
  }
  cycles.add_mean_row();
  traffic.add_mean_row();
  std::cout << cycles.to_ascii(1) << '\n' << traffic.to_ascii(1) << '\n';
  std::cout << "Expectation: bigger buffers help BCP's time but its traffic\n"
               "stays far above CPP's, which needs no buffer at all.\n";
  return 0;
}
