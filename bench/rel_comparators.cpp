// Related-work comparison (paper section 5): CPP against the two classic
// "second chance" L1 designs it is contrasted with — the pseudo-associative
// cache (which must kick out the original occupant to use its secondary
// place) and Jouppi's victim cache (dedicated storage beside the L1).
//
// The paper's argument: "the new cache design only stores a cache line to
// its secondary place if there are free spots. It will neither pollute the
// cache line nor degrade the original cache performance."

#include <iostream>

#include "cache/line_compression_hierarchy.hpp"
#include "cache/pseudo_assoc_hierarchy.hpp"
#include "cache/victim_hierarchy.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();

  stats::Table cycles("Related work: execution time vs BC (%)",
                      {"PAC", "VC-8", "LCC", "HAC", "CPP"});
  stats::Table traffic("Related work: memory traffic vs BC (%)",
                       {"PAC", "VC-8", "LCC", "HAC", "CPP"});
  stats::Table second("Related work: secondary-place / victim / affiliated hits",
                      {"PAC slow hits", "VC hits", "LCC shared frames",
                       "CPP affiliated hits"});
  for (const workload::Workload& wl : options.workloads) {
    std::cerr << "  " << wl.name << "...\n";
    const cpu::Trace trace = workload::generate(wl, options.params());
    const sim::RunResult r_bc = sim::run_trace(trace, sim::ConfigKind::kBC);
    const double bc = r_bc.cycles();
    const double bc_traffic = r_bc.traffic_words();

    cache::PseudoAssocHierarchy pac;
    const sim::RunResult r_pac = sim::run_trace_on(trace, pac);
    cache::VictimHierarchy vc;
    const sim::RunResult r_vc = sim::run_trace_on(trace, vc);
    cache::LineCompressionHierarchy lcc;
    const sim::RunResult r_lcc = sim::run_trace_on(trace, lcc);
    const sim::RunResult r_hac = sim::run_trace(trace, sim::ConfigKind::kHAC);
    const sim::RunResult r_cpp = sim::run_trace(trace, sim::ConfigKind::kCPP);

    cycles.add_row(wl.name, {r_pac.cycles() / bc * 100.0, r_vc.cycles() / bc * 100.0,
                             r_lcc.cycles() / bc * 100.0, r_hac.cycles() / bc * 100.0,
                             r_cpp.cycles() / bc * 100.0});
    traffic.add_row(wl.name, {r_pac.traffic_words() / bc_traffic * 100.0,
                              r_vc.traffic_words() / bc_traffic * 100.0,
                              r_lcc.traffic_words() / bc_traffic * 100.0,
                              r_hac.traffic_words() / bc_traffic * 100.0,
                              r_cpp.traffic_words() / bc_traffic * 100.0});
    second.add_row(wl.name,
                   {static_cast<double>(pac.slow_hits()),
                    static_cast<double>(vc.victim_hits()),
                    static_cast<double>(lcc.shared_frames()),
                    static_cast<double>(r_cpp.hierarchy.l1_affiliated_hits +
                                        r_cpp.hierarchy.l2_affiliated_hits)});
  }
  cycles.add_mean_row();
  traffic.add_mean_row();
  second.add_mean_row();

  std::cout << cycles.to_ascii(1) << '\n' << traffic.to_ascii(1) << '\n'
            << second.to_ascii(0) << '\n';
  std::cout << "Reading: PAC/VC only recover conflict misses; CPP's affiliated\n"
               "place additionally prefetches, at zero dedicated storage.\n";
  return 0;
}
