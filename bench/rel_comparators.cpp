// Related-work comparison (paper section 5): CPP against the two classic
// "second chance" L1 designs it is contrasted with — the pseudo-associative
// cache (which must kick out the original occupant to use its secondary
// place) and Jouppi's victim cache (dedicated storage beside the L1).
//
// The paper's argument: "the new cache design only stores a cache line to
// its secondary place if there are free spots. It will neither pollute the
// cache line nor degrade the original cache performance."

#include <iostream>

#include "bench_common.hpp"
#include "cache/line_compression_hierarchy.hpp"
#include "cache/pseudo_assoc_hierarchy.hpp"
#include "cache/victim_hierarchy.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();

  // Variant order: BC baseline, then the comparators; the harness reads
  // design-specific counters back off the hierarchies the jobs kept alive.
  const std::vector<bench::Variant> variants = {
      bench::config_variant(sim::ConfigKind::kBC),
      {"PAC", [] { return std::make_unique<cache::PseudoAssocHierarchy>(); }},
      {"VC-8", [] { return std::make_unique<cache::VictimHierarchy>(); }},
      {"LCC", [] { return std::make_unique<cache::LineCompressionHierarchy>(); }},
      bench::config_variant(sim::ConfigKind::kHAC),
      bench::config_variant(sim::ConfigKind::kCPP),
  };
  const auto grid = bench::run_variant_grid(options, variants);

  stats::Table cycles("Related work: execution time vs BC (%)",
                      {"PAC", "VC-8", "LCC", "HAC", "CPP"});
  stats::Table traffic("Related work: memory traffic vs BC (%)",
                       {"PAC", "VC-8", "LCC", "HAC", "CPP"});
  stats::Table second("Related work: secondary-place / victim / affiliated hits",
                      {"PAC slow hits", "VC hits", "LCC shared frames",
                       "CPP affiliated hits"});
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    const std::vector<sim::JobResult>& row = grid[w];
    const double bc = row[0].run.cycles();
    const double bc_traffic = row[0].run.traffic_words();

    std::vector<double> c_cells, t_cells;
    for (std::size_t v = 1; v < variants.size(); ++v) {
      c_cells.push_back(row[v].run.cycles() / bc * 100.0);
      t_cells.push_back(row[v].run.traffic_words() / bc_traffic * 100.0);
    }
    cycles.add_row(options.workloads[w].name, std::move(c_cells));
    traffic.add_row(options.workloads[w].name, std::move(t_cells));

    const auto* pac =
        static_cast<const cache::PseudoAssocHierarchy*>(row[1].hierarchy.get());
    const auto* vc =
        static_cast<const cache::VictimHierarchy*>(row[2].hierarchy.get());
    const auto* lcc = static_cast<const cache::LineCompressionHierarchy*>(
        row[3].hierarchy.get());
    second.add_row(options.workloads[w].name,
                   {static_cast<double>(pac->slow_hits()),
                    static_cast<double>(vc->victim_hits()),
                    static_cast<double>(lcc->shared_frames()),
                    static_cast<double>(row[5].run.hierarchy.l1_affiliated_hits +
                                        row[5].run.hierarchy.l2_affiliated_hits)});
  }
  cycles.add_mean_row();
  traffic.add_mean_row();
  second.add_mean_row();

  std::cout << cycles.to_ascii(1) << '\n' << traffic.to_ascii(1) << '\n'
            << second.to_ascii(0) << '\n';
  std::cout << "Reading: PAC/VC only recover conflict misses; CPP's affiliated\n"
               "place additionally prefetches, at zero dedicated storage.\n";
  return 0;
}
