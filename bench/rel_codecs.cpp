// Codec comparison: the paper's compressed-transfer configurations (BCC,
// CPP) under every registered compression codec — the paper's dynamic
// value-class scheme, FPC, BDI and WKdm — through bench_common's
// (config x codec) variant grid. Uncompressed configs are codec-invariant,
// so BC runs once as the shared baseline.
//
// Two views, mirroring how the paper splits its argument:
//   * end-to-end execution time vs BC: does a codec's coverage and gate
//     delay actually buy cycles once partial prefetching uses it?
//   * line accounting over the final memory image (docs/codecs.md): how
//     much does each codec compress, and what does its tag metadata cost?

#include <iostream>

#include "analysis/codec_survey.hpp"
#include "bench_common.hpp"
#include "compress/classification_stats.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();

  std::vector<compress::CodecKind> codecs(std::begin(compress::kAllCodecs),
                                          std::end(compress::kAllCodecs));
  std::vector<std::string> codec_names;
  for (const compress::CodecKind kind : codecs) {
    codec_names.emplace_back(compress::Codec{kind}.name());
  }

  // BC first (the baseline), then BCC and CPP crossed with every codec.
  std::vector<bench::Variant> variants = {
      bench::config_variant(sim::ConfigKind::kBC)};
  const std::vector<bench::Variant> cells = bench::codec_grid_variants(
      {sim::ConfigKind::kBCC, sim::ConfigKind::kCPP}, codecs);
  variants.insert(variants.end(), cells.begin(), cells.end());
  const auto grid = bench::run_variant_grid(options, variants);

  std::vector<std::string> columns;
  for (std::size_t v = 1; v < variants.size(); ++v) {
    columns.push_back(variants[v].label);
  }
  stats::Table cycles("Codec grid: execution time vs BC (%)", columns);
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    const double bc = grid[w][0].run.cycles();
    std::vector<double> cells_row;
    for (std::size_t v = 1; v < variants.size(); ++v) {
      cells_row.push_back(grid[w][v].run.cycles() / bc * 100.0);
    }
    cycles.add_row(options.workloads[w].name, std::move(cells_row));
  }
  cycles.add_mean_row();

  // Line accounting is a property of the trace and codec alone (identical
  // across configs), so it needs traces, not simulations.
  std::vector<std::vector<double>> ratio_rows(options.workloads.size());
  std::vector<std::vector<double>> tag_rows(options.workloads.size());
  bench::for_each_trace(
      options, [&](std::size_t i, const workload::Workload&,
                   const cpu::Trace& trace) {
        for (const compress::CodecKind kind : codecs) {
          const compress::ClassificationStats survey =
              analysis::survey_codec(trace, compress::Codec{kind});
          ratio_rows[i].push_back(survey.line_compression_ratio());
          tag_rows[i].push_back(survey.tag_overhead_fraction() * 100.0);
        }
      });

  stats::Table ratio(
      "Codec line accounting: compression ratio raw/(data+tag), >1 wins",
      codec_names);
  stats::Table tags("Codec line accounting: tag metadata overhead (%)",
                    codec_names);
  for (std::size_t w = 0; w < options.workloads.size(); ++w) {
    ratio.add_row(options.workloads[w].name, std::move(ratio_rows[w]));
    tags.add_row(options.workloads[w].name, std::move(tag_rows[w]));
  }
  ratio.add_mean_row();
  tags.add_mean_row();

  std::cout << cycles.to_ascii(1) << '\n' << ratio.to_ascii(3) << '\n'
            << tags.to_ascii(1) << '\n';
  std::cout << "Reading: the paper codec pays 1 tag bit/word for 16-bit\n"
               "slots; FPC buys wider coverage with 3-bit prefixes; BDI is\n"
               "base+delta over the whole line; WKdm's dictionary favours\n"
               "repeating words. Execution time moves only where coverage\n"
               "feeds the partial-prefetch path (BCC/CPP).\n";
  return 0;
}
