// Reproduces paper Figure 13: L2 cache misses per configuration,
// normalised to BC (= 100). BCP sometimes beats CPP at L2 (bigger buffer);
// HAC removes conflict misses.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cpc;
  const sim::BenchOptions options = sim::BenchOptions::from_env();
  const auto rows = bench::run_sweep(
      options, {sim::kAllConfigs, sim::kAllConfigs + std::size(sim::kAllConfigs)});

  stats::Table table = bench::normalised_table(
      "Figure 13: L2 cache misses normalised to BC (%)", rows,
      bench::paper_config_names(),
      [](const sim::RunResult& r) { return r.l2_misses(); });
  bench::emit(table, "fig13_l2miss_normalised");

  stats::Table abs = bench::absolute_table(
      "Raw L2 misses", rows, bench::paper_config_names(),
      [](const sim::RunResult& r) { return r.l2_misses(); });
  bench::emit(abs, "fig13_l2miss_raw", 0);

  std::cout << "Paper reference: prefetching cuts L2 misses; BCP sometimes\n"
               "does better than CPP thanks to its larger prefetch buffer.\n";
  return 0;
}
