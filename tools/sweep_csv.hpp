#pragma once
// The one definition of the sweep CSV schema shared by cpc_run (serial
// sweeps) and cpc_client (results streamed back from a cpc_serve daemon).
// Both tools printing through these helpers is what makes "service output
// is bit-identical to the serial run" checkable with cmp(1).

#include <ostream>
#include <string>

#include "compress/classification_stats.hpp"
#include "sim/job.hpp"

namespace cpc::cli {

inline constexpr const char* kSweepCsvHeader =
    "config,cycles,ipc,l1_misses,l2_misses,mem_words,wall_seconds,ops_per_sec";

inline void print_sweep_csv_row(std::ostream& out,
                                const cpc::sim::JobResult& result) {
  out << result.tag << ',' << result.run.core.cycles << ','
      << result.run.core.ipc() << ',' << result.run.hierarchy.l1_misses << ','
      << result.run.hierarchy.l2_misses << ',' << result.run.traffic_words()
      << ',' << result.wall_seconds << ',' << result.ops_per_second << '\n';
}

/// Codec-mode sweep schema (cpc_run --codecs). A separate header rather
/// than new columns on kSweepCsvHeader: default sweeps stay bit-identical
/// to pre-codec output, and the journal ok-line schema stays pinned. The
/// three trailing columns carry the trace-level line-accounting survey for
/// the row's codec (analysis/codec_survey.hpp) — compression ratio after
/// paying tag/metadata bits, the metadata share of the encoded stream, and
/// mean metadata bits per line.
inline constexpr const char* kCodecSweepCsvHeader =
    "config,codec,cycles,ipc,l1_misses,l2_misses,mem_words,wall_seconds,"
    "ops_per_sec,line_comp_ratio,tag_overhead,tag_bits_per_line";

inline void print_codec_sweep_csv_row(
    std::ostream& out, const cpc::sim::JobResult& result,
    const std::string& config, const compress::Codec& codec,
    const compress::ClassificationStats& survey) {
  out << config << ',' << codec.name() << ',' << result.run.core.cycles << ','
      << result.run.core.ipc() << ',' << result.run.hierarchy.l1_misses << ','
      << result.run.hierarchy.l2_misses << ',' << result.run.traffic_words()
      << ',' << result.wall_seconds << ',' << result.ops_per_second << ','
      << survey.line_compression_ratio() << ','
      << survey.tag_overhead_fraction() << ',' << survey.tag_bits_per_line()
      << '\n';
}

}  // namespace cpc::cli
