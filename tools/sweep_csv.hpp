#pragma once
// The one definition of the sweep CSV schema shared by cpc_run (serial
// sweeps) and cpc_client (results streamed back from a cpc_serve daemon).
// Both tools printing through these helpers is what makes "service output
// is bit-identical to the serial run" checkable with cmp(1).

#include <ostream>

#include "sim/job.hpp"

namespace cpc::cli {

inline constexpr const char* kSweepCsvHeader =
    "config,cycles,ipc,l1_misses,l2_misses,mem_words,wall_seconds,ops_per_sec";

inline void print_sweep_csv_row(std::ostream& out,
                                const cpc::sim::JobResult& result) {
  out << result.tag << ',' << result.run.core.cycles << ','
      << result.run.core.ipc() << ',' << result.run.hierarchy.l1_misses << ','
      << result.run.hierarchy.l2_misses << ',' << result.run.traffic_words()
      << ',' << result.wall_seconds << ',' << result.ops_per_second << '\n';
}

}  // namespace cpc::cli
