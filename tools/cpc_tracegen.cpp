// cpc_tracegen — generate a workload trace and save it to disk.
//
//   cpc_tracegen <workload|all> <output-path|output-dir> [ops] [seed]
//
// With "all", one <name>.cpctrace file per workload is written into the
// given directory. Saved traces replay bit-identically via cpc_run.

#include <cstdlib>
#include <iostream>

#include "cpu/trace_io.hpp"
#include "workload/workloads.hpp"

#include "cli_util.hpp"

namespace {

void usage() {
  std::cerr << "usage: cpc_tracegen <workload|all> <output> [ops=600000] [seed=0x5eed]\n"
               "workloads:\n";
  for (const auto& wl : cpc::workload::all_workloads()) {
    std::cerr << "  " << wl.name << " — " << wl.description << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpc;
  if (argc < 3) {
    usage();
    return cli::kExitUsage;
  }
  const std::string which = argv[1];
  const std::string output = argv[2];
  workload::WorkloadParams params;
  if (argc > 3) params.target_ops = std::strtoull(argv[3], nullptr, 0);
  if (argc > 4) params.seed = std::strtoull(argv[4], nullptr, 0);

  return cli::guarded_main([&]() -> int {
    if (which == "all") {
      for (const auto& wl : workload::all_workloads()) {
        const std::string path = output + "/" + wl.name + ".cpctrace";
        const cpu::Trace trace = workload::generate(wl, params);
        cpu::write_trace_file(path, trace);
        std::cout << path << ": " << trace.size() << " ops\n";
      }
    } else {
      const cpu::Trace trace = workload::generate(workload::find_workload(which), params);
      cpu::write_trace_file(output, trace);
      std::cout << output << ": " << trace.size() << " ops\n";
    }
    return cli::kExitOk;
  });
}
