// cpc_serve — long-running sweep service: accepts job submissions from many
// concurrent clients over a Unix-domain socket and streams per-job results
// back as they complete.
//
//   cpc_serve --socket PATH [--procs N] [--queue-max N] [--state-dir DIR]
//             [--quiet]
//
// Wire format: sim::ipc frames (CRC32-guarded) carrying net/protocol.hpp
// messages; see that header for the conversation shape. Execution goes
// through the same engines as cpc_run — SweepRunner::run_contained, or the
// ShardSupervisor crash-isolation path when --procs > 1 — so streamed
// results are bit-identical to a serial run.
//
// Robustness behaviour (docs/robustness.md "Sweep service" failure matrix):
//   * admission control: at most --queue-max submissions queue; excess gets
//     an explicit kShed reply instead of unbounded buffering
//   * per-request deadlines layer on CPC_JOB_TIMEOUT_MS (the tighter wins)
//   * a client that disconnects mid-sweep has its submissions cancelled —
//     queued ones are unqueued, the running one is cancelled cooperatively
//     (in-process) or its workers killed (sharded)
//   * SIGTERM/SIGINT drain: stop accepting, finish the in-flight sweep,
//     notify queued clients, leave queued request files on disk, exit 0
//   * restart recovery: --state-dir persists each submission (<id>.req),
//     its checkpoint journal (<id>.journal) and a completion marker
//     (<id>.done); after a crash the daemon re-enqueues unfinished requests
//     and the journal skips already-completed jobs

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "compress/codec.hpp"
#include "cpu/trace_io.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "sim/bench_meter.hpp"
#include "sim/ipc.hpp"
#include "sim/journal.hpp"
#include "sim/shard_supervisor.hpp"
#include "sim/sweep_runner.hpp"
#include "workload/workloads.hpp"

#include "cli_util.hpp"

namespace {

using namespace cpc;

volatile std::sig_atomic_t g_drain = 0;
void request_drain(int) { g_drain = 1; }

int usage() {
  std::cerr << "usage: cpc_serve --socket PATH [--procs N] [--queue-max N]\n"
               "                 [--state-dir DIR] [--quiet]\n";
  return cli::kExitUsage;
}

struct ServeFlags {
  std::string socket_path;
  unsigned procs = 0;         ///< > 1 shards each sweep across workers
  std::size_t queue_max = 8;  ///< admission bound; excess submissions shed
  std::string state_dir;      ///< empty = no persistence / restart recovery
  bool quiet = false;
};

/// One accepted sweep. `cancel` is the cooperative kill switch shared with
/// the execution engine (RunOptions::cancel).
struct Submission {
  std::string id;
  net::JobSpec spec;
  /// Parsed once at admission (or recovery) from spec.configs/spec.codecs;
  /// the executor expands it without re-parsing, so admission and execution
  /// can never disagree about what a spec means.
  net::JobGrid grid;
  std::atomic<bool> cancel{false};

  std::size_t job_count() const { return grid.job_count(); }
};
using SubmissionPtr = std::shared_ptr<Submission>;

/// State shared between the socket event loop (main thread) and the
/// executor thread.
struct ServerState {
  Mutex mutex;
  std::deque<SubmissionPtr> queue CPC_GUARDED_BY(mutex);
  SubmissionPtr running CPC_GUARDED_BY(mutex);
  /// Messages produced by the executor, for the event loop to route to the
  /// owning client (or drop, when the owner is gone).
  std::deque<net::Message> outbound CPC_GUARDED_BY(mutex);
  bool draining CPC_GUARDED_BY(mutex) = false;
  bool executor_done CPC_GUARDED_BY(mutex) = false;
};

struct Client {
  int fd = -1;
  sim::ipc::FrameDecoder decoder;
  std::string outbox;             ///< framed bytes awaiting the socket
  std::vector<std::string> subs;  ///< submission ids this client owns
  bool dead = false;
};

// ---------------------------------------------------------------------------
// State-dir persistence
// ---------------------------------------------------------------------------

std::string request_path(const ServeFlags& flags, const std::string& id) {
  return flags.state_dir + "/" + id + ".req";
}
std::string journal_path(const ServeFlags& flags, const std::string& id) {
  return flags.state_dir + "/" + id + ".journal";
}
std::string done_path(const ServeFlags& flags, const std::string& id) {
  return flags.state_dir + "/" + id + ".done";
}

/// Atomic write (tmp + rename), same discipline as the trace spill tier.
bool write_file_atomic(const std::string& path, const std::string& bytes) {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

void persist_request(const ServeFlags& flags, const Submission& sub) {
  if (flags.state_dir.empty()) return;
  if (!write_file_atomic(request_path(flags, sub.id),
                         net::encode_job_spec(sub.spec))) {
    std::cerr << "warning: cannot persist request " << sub.id
              << " (restart recovery will miss it)\n";
  }
  // A fresh submission under a recycled id must not look finished.
  std::error_code ec;
  std::filesystem::remove(done_path(flags, sub.id), ec);
}

void forget_request(const ServeFlags& flags, const std::string& id) {
  if (flags.state_dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove(request_path(flags, id), ec);
}

void mark_done(const ServeFlags& flags, const std::string& id,
               std::uint64_t ok_count, std::uint64_t fail_count) {
  if (flags.state_dir.empty()) return;
  write_file_atomic(done_path(flags, id), std::to_string(ok_count) + " " +
                                              std::to_string(fail_count) +
                                              "\n");
}

bool read_done(const ServeFlags& flags, const std::string& id,
               std::uint64_t& ok_count, std::uint64_t& fail_count) {
  if (flags.state_dir.empty()) return false;
  std::ifstream in(done_path(flags, id));
  if (!in.good()) return false;
  in >> ok_count >> fail_count;
  return !in.fail();
}

/// `id` names on-disk files; confine it to a filesystem-safe alphabet.
bool valid_submission_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return id[0] != '.';
}

// ---------------------------------------------------------------------------
// Executor thread: drains the submission queue through the sweep engines
// ---------------------------------------------------------------------------

/// Expands a validated spec into the (config × codec) job grid (exactly
/// what cpc_run --sweep builds, so journals and results line up byte for
/// byte). The grid was parsed at admission/recovery; no re-parsing here.
std::vector<sim::Job> build_jobs(const net::JobSpec& spec,
                                 const net::JobGrid& grid) {
  std::shared_ptr<const cpu::Trace> trace;
  if (!spec.trace_path.empty()) {
    trace = std::make_shared<const cpu::Trace>(
        cpu::read_trace_file(spec.trace_path));
  }
  std::vector<sim::Job> jobs;
  for (const sim::ConfigKind kind : grid.configs) {
    for (const compress::CodecKind codec_kind : grid.codecs) {
      const compress::Codec codec{codec_kind};
      sim::Job job;
      if (trace) {
        job.trace = trace;
      } else {
        job.workload = workload::find_workload(spec.workload);
        job.trace_ops = spec.trace_ops;
        job.seed = spec.seed;
      }
      job.make_hierarchy = [kind, codec] {
        return sim::make_hierarchy(kind, codec);
      };
      job.tag = sim::config_codec_tag(kind, codec);
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

void run_submission(ServerState& state, const ServeFlags& flags,
                    Submission& sub) {
  const auto post = [&state](net::Message message) {
    const MutexLock lock(state.mutex);
    state.outbound.push_back(std::move(message));
  };
  const auto cancelled = [&sub] {
    return sub.cancel.load(std::memory_order_relaxed);
  };
  if (cancelled()) {
    // The owner vanished before the sweep started: abandon it entirely.
    forget_request(flags, sub.id);
    return;
  }

  std::vector<sim::Job> jobs;
  try {
    jobs = build_jobs(sub.spec, sub.grid);
  } catch (const std::exception& error) {
    // Admission validated the spec, but the environment can still change
    // underneath us (trace file deleted between submit and run).
    post({net::MsgKind::kRejected, sub.id, 0, 0,
          std::string("cannot start sweep: ") + error.what()});
    forget_request(flags, sub.id);
    return;
  }

  sim::RunOptions options = sim::RunOptions::from_env();
  // The engine's progress/worker-death lines go to the daemon's own log;
  // a contained shard crash should be visible there, so only --quiet
  // silences it. Results themselves travel through the callbacks below.
  options.quiet = flags.quiet;
  options.job_timeout_ms =
      net::effective_deadline_ms(sub.spec.deadline_ms, options.job_timeout_ms);
  if (!flags.state_dir.empty()) {
    options.journal_path = journal_path(flags, sub.id);
  }
  options.cancel = &sub.cancel;
  std::uint64_t ok_count = 0;
  std::uint64_t fail_count = 0;
  // A cancelled submission stops posting: a resubmission under the same id
  // may already own the stream, and the stale run's "sweep cancelled"
  // failures must not masquerade as the new run's results. Completed jobs
  // are journaled either way, so nothing real is lost.
  options.on_result = [&](const sim::JobResult& result) {
    ++ok_count;
    if (cancelled()) return;
    post({net::MsgKind::kResult, sub.id, result.index, 0,
          sim::encode_ok_line(result)});
  };
  options.on_failure = [&](const sim::JobFailure& failure) {
    ++fail_count;
    if (cancelled()) return;
    post({net::MsgKind::kJobFailed, sub.id, failure.index, 0, failure.what});
  };

  if (!flags.quiet) {
    std::cerr << "cpc_serve: running " << sub.id << " (" << sub.job_count()
              << " jobs)\n";
  }
  const sim::SweepRunner runner;
  sim::RunReport report;
  if (flags.procs > 1) {
    sim::ShardOptions shard = sim::ShardOptions::from_env();
    shard.procs = flags.procs;
    shard.run = options;
    report = runner.run_sharded(std::move(jobs), shard);
  } else {
    report = runner.run_contained(std::move(jobs), options);
  }

  if (cancelled()) {
    // Orphaned mid-sweep: completed jobs are journaled; no done marker, so
    // a resubmission (or restart) re-runs only what is missing. Keep the
    // request file for restart recovery.
    if (!flags.quiet) {
      std::cerr << "cpc_serve: cancelled " << sub.id << " (client gone)\n";
    }
    return;
  }
  post({net::MsgKind::kSweepDone, sub.id, ok_count, fail_count, {}});
  mark_done(flags, sub.id, ok_count, fail_count);
  if (!flags.quiet) {
    std::cerr << "cpc_serve: finished " << sub.id << " (" << ok_count
              << " ok, " << fail_count << " failed";
    if (report.worker_rss_peak_bytes > 0) {
      std::cerr << ", worker rss peak " << (report.worker_rss_peak_bytes >> 20)
                << " MiB";
    }
    std::cerr << ")\n";
  }
}

void executor_loop(ServerState& state, const ServeFlags& flags) {
  while (true) {
    SubmissionPtr sub;
    {
      const MutexLock lock(state.mutex);
      if (state.draining) {
        // Queued submissions stay journaled on disk ("journal the rest");
        // only the in-flight sweep was finished.
        state.executor_done = true;
        return;
      }
      if (!state.queue.empty()) {
        sub = state.queue.front();
        state.queue.pop_front();
        state.running = sub;
      }
    }
    if (!sub) {
      sim::ipc::sleep_ms(20);  // poll; tools may not use CondVar timeouts
      continue;
    }
    run_submission(state, flags, *sub);
    {
      const MutexLock lock(state.mutex);
      state.running.reset();
    }
  }
}

// ---------------------------------------------------------------------------
// Event loop (main thread)
// ---------------------------------------------------------------------------

Client* find_owner(std::vector<std::unique_ptr<Client>>& clients,
                   const std::string& id) {
  for (const auto& client : clients) {
    if (client->dead) continue;
    for (const std::string& owned : client->subs) {
      if (owned == id) return client.get();
    }
  }
  return nullptr;
}

/// Makes `owner` the sole owner of `id`: a superseding submit (reconnect
/// under the same id from a new connection) must re-route the stream, or
/// find_owner would keep feeding the stale connection.
void claim_ownership(std::vector<std::unique_ptr<Client>>& clients,
                     Client& owner, const std::string& id) {
  for (const auto& client : clients) {
    if (client.get() == &owner) continue;
    std::vector<std::string>& subs = client->subs;
    subs.erase(std::remove(subs.begin(), subs.end(), id), subs.end());
  }
  if (std::find(owner.subs.begin(), owner.subs.end(), id) ==
      owner.subs.end()) {
    owner.subs.push_back(id);
  }
}

/// Replays a finished submission to a resuming client straight from its
/// journal — the daemon may have restarted since the sweep ran.
void replay_finished(const ServeFlags& flags, Client& client,
                     const std::string& id, std::size_t job_count,
                     std::uint64_t ok_count, std::uint64_t fail_count) {
  client.outbox += net::frame_message(
      {net::MsgKind::kAccepted, id, job_count, 0, {}});
  std::ifstream in(journal_path(flags, id));
  std::string line;
  // cpc-lint: allow(CPC-L012) — the resume contract replays the journal
  // synchronously before any new result can race it; the read is a local
  // file bounded by the submission's own job count.
  while (std::getline(in, line)) {
    const sim::JournalEntry entry = sim::decode_journal_line(line, job_count);
    if (entry.kind == sim::JournalEntry::Kind::kOk) {
      client.outbox += net::frame_message(
          {net::MsgKind::kResult, id, entry.index, 0, line});
    } else if (entry.kind == sim::JournalEntry::Kind::kFail) {
      client.outbox += net::frame_message(
          {net::MsgKind::kJobFailed, id, entry.index, 0, entry.what});
    }
  }
  client.outbox += net::frame_message(
      {net::MsgKind::kSweepDone, id, ok_count, fail_count, {}});
}

void handle_submit(ServerState& state, const ServeFlags& flags,
                   std::vector<std::unique_ptr<Client>>& clients,
                   Client& client, const net::Message& msg) {
  const auto reply = [&client, &msg](net::MsgKind kind, std::uint64_t a,
                                     std::uint64_t b, std::string text) {
    client.outbox +=
        net::frame_message({kind, msg.id, a, b, std::move(text)});
  };
  if (!valid_submission_id(msg.id)) {
    reply(net::MsgKind::kRejected, 0, 0,
          "invalid submission id (want [A-Za-z0-9._-]{1,64}, no leading dot)");
    return;
  }
  net::JobSpec spec;
  if (!net::decode_job_spec(msg.text, spec)) {
    reply(net::MsgKind::kRejected, 0, 0, "malformed job spec payload");
    return;
  }
  // Validate eagerly so a doomed request is refused at admission, not after
  // queueing behind other sweeps. The grid is parsed exactly once, here;
  // the executor and the accept reply reuse it.
  net::JobGrid grid;
  try {
    grid = net::parse_job_grid(spec.configs, spec.codecs);
    if (spec.trace_path.empty() == spec.workload.empty()) {
      throw std::invalid_argument(
          "exactly one of trace path or workload must be set");
    }
    if (!spec.workload.empty()) {
      workload::find_workload(spec.workload);  // throws out_of_range
      if (spec.trace_ops == 0) {
        throw std::invalid_argument("workload mode needs trace_ops > 0");
      }
    } else {
      const std::ifstream probe(spec.trace_path, std::ios::binary);
      if (!probe.good()) {
        throw std::invalid_argument("trace file unreadable: " +
                                    spec.trace_path);
      }
    }
  } catch (const std::exception& error) {
    reply(net::MsgKind::kRejected, 0, 0, error.what());
    return;
  }

  // A resuming client whose sweep already finished is served wholly from
  // the journal — nothing re-runs.
  const std::size_t job_count = grid.job_count();
  std::uint64_t done_ok = 0, done_fail = 0;
  if (msg.b == 1 && read_done(flags, msg.id, done_ok, done_fail)) {
    replay_finished(flags, client, msg.id, job_count, done_ok, done_fail);
    return;
  }

  SubmissionPtr sub;
  std::uint64_t depth = 0;
  {
    const MutexLock lock(state.mutex);
    if (state.draining) {
      reply(net::MsgKind::kDraining, 0, 0,
            "daemon is draining; resubmit after restart");
      return;
    }
    // Admission first, counting only *other* ids: superseding an entry of
    // the same id cannot grow the queue, and a shed resubmission must leave
    // any in-flight instance of its id untouched — cancelling first would
    // abandon previously accepted work and then refuse the replacement.
    std::size_t other_depth = 0;
    for (const SubmissionPtr& queued : state.queue) {
      if (queued->id != msg.id) ++other_depth;
    }
    if (other_depth >= flags.queue_max) {
      reply(net::MsgKind::kShed, 0, other_depth,
            "queue full (" + std::to_string(other_depth) +
                " submissions pending); retry with backoff");
      return;
    }
    // Admitted: a resubmitted id supersedes any stale instance (its previous
    // owner died, or this is a reconnect): cancel the old run; the journal
    // carries its completed jobs forward into the new one.
    if (state.running && state.running->id == msg.id) {
      state.running->cancel.store(true, std::memory_order_relaxed);
    }
    for (auto it = state.queue.begin(); it != state.queue.end();) {
      if ((*it)->id == msg.id) {
        (*it)->cancel.store(true, std::memory_order_relaxed);
        it = state.queue.erase(it);
      } else {
        ++it;
      }
    }
    sub = std::make_shared<Submission>();
    sub->id = msg.id;
    sub->spec = spec;
    sub->grid = grid;
    state.queue.push_back(sub);
    depth = state.queue.size();
  }
  persist_request(flags, *sub);
  claim_ownership(clients, client, msg.id);
  reply(net::MsgKind::kAccepted, job_count, depth, {});
  if (!flags.quiet) {
    std::cerr << "cpc_serve: accepted " << msg.id << " (" << job_count
              << " jobs, queue depth " << depth << ")\n";
  }
}

/// Returns false on protocol corruption (the client is dropped).
bool handle_frame(ServerState& state, const ServeFlags& flags,
                  std::vector<std::unique_ptr<Client>>& clients,
                  Client& client, const sim::ipc::Frame& frame) {
  if (frame.type == sim::ipc::FrameType::kHeartbeat) return true;
  if (frame.type != sim::ipc::FrameType::kBlob) return true;  // ignore
  net::Message msg;
  if (!net::decode_message(frame.payload, msg)) return false;
  if (msg.kind == net::MsgKind::kSubmit) {
    handle_submit(state, flags, clients, client, msg);
  }
  return true;
}

/// A disconnected client's submissions are orphaned: cancel them so no
/// compute is spent streaming into the void.
void cancel_owned(ServerState& state, const ServeFlags& flags,
                  const Client& client) {
  const MutexLock lock(state.mutex);
  for (const std::string& id : client.subs) {
    if (state.running && state.running->id == id) {
      state.running->cancel.store(true, std::memory_order_relaxed);
    }
    for (auto it = state.queue.begin(); it != state.queue.end();) {
      if ((*it)->id == id) {
        (*it)->cancel.store(true, std::memory_order_relaxed);
        it = state.queue.erase(it);
        forget_request(flags, id);
      } else {
        ++it;
      }
    }
  }
}

/// Re-enqueues requests persisted by a previous daemon instance that never
/// finished (no .done marker). Their journals skip completed jobs.
void recover_state_dir(ServerState& state, const ServeFlags& flags) {
  if (flags.state_dir.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(flags.state_dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create state dir '" + flags.state_dir +
                             "': " + ec.message());
  }
  std::vector<std::string> ids;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(flags.state_dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".req";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    ids.push_back(name.substr(0, name.size() - suffix.size()));
  }
  std::sort(ids.begin(), ids.end());  // deterministic recovery order
  for (const std::string& id : ids) {
    std::uint64_t ok_count = 0, fail_count = 0;
    if (read_done(flags, id, ok_count, fail_count)) continue;  // finished
    std::ifstream in(request_path(flags, id), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    net::JobSpec spec;
    if (!in.good() || !net::decode_job_spec(bytes, spec)) {
      std::cerr << "warning: ignoring unreadable request file for '" << id
                << "'\n";
      continue;
    }
    auto sub = std::make_shared<Submission>();
    sub->id = id;
    sub->spec = spec;
    try {
      sub->grid = net::parse_job_grid(spec.configs, spec.codecs);
    } catch (const std::exception&) {
      std::cerr << "warning: ignoring request '" << id
                << "' with an invalid config or codec list\n";
      continue;
    }
    const MutexLock lock(state.mutex);
    state.queue.push_back(std::move(sub));
  }
  {
    const MutexLock lock(state.mutex);
    if (!flags.quiet && !state.queue.empty()) {
      std::cerr << "cpc_serve: recovered " << state.queue.size()
                << " unfinished submission(s) from " << flags.state_dir
                << "\n";
    }
  }
}

int serve_main(const ServeFlags& flags) {
  if (!net::sockets_supported()) {
    std::cerr << "error: Unix-domain sockets unsupported on this platform\n";
    return cli::kExitError;
  }
  ServerState state;
  recover_state_dir(state, flags);

  int listen_fd = net::listen_unix(flags.socket_path, 64);
  if (listen_fd < 0) return cli::kExitError;
  std::signal(SIGTERM, request_drain);
  std::signal(SIGINT, request_drain);
  if (!flags.quiet) {
    std::cerr << "cpc_serve: listening on " << flags.socket_path
              << " (queue-max " << flags.queue_max << ", procs "
              << (flags.procs == 0 ? 1 : flags.procs) << ")\n";
  }

  std::thread executor([&state, &flags] { executor_loop(state, flags); });
  std::vector<std::unique_ptr<Client>> clients;
  sim::Stopwatch heartbeat_clock;
  bool drain_started = false;
  // A hard poll error returns immediately, so a persistent one (EBADF,
  // ENOMEM) would spin this loop at full speed forever. Tolerate a
  // transient burst, then drain.
  constexpr int kPollFailureLimit = 100;
  int poll_failures = 0;
  char buffer[4096];

  while (true) {
    // Signal-driven drain: close the door, tell waiting clients, let the
    // executor finish the sweep it is on.
    if (g_drain != 0 && !drain_started) {
      drain_started = true;
      net::close_socket(listen_fd);
      net::unlink_socket(flags.socket_path);
      const MutexLock lock(state.mutex);
      state.draining = true;
      for (const SubmissionPtr& sub : state.queue) {
        if (Client* owner = find_owner(clients, sub->id)) {
          owner->outbox += net::frame_message(
              {net::MsgKind::kDraining, sub->id, 0, 0,
               "daemon draining; request journaled for restart"});
        }
      }
      if (!flags.quiet) {
        std::cerr << "cpc_serve: draining (" << state.queue.size()
                  << " queued submission(s) journaled)\n";
      }
    }

    // Route executor output to owners. Messages for dead/vanished owners
    // are dropped — the journal has them if the client ever resumes.
    {
      std::deque<net::Message> pending;
      {
        const MutexLock lock(state.mutex);
        pending.swap(state.outbound);
      }
      for (net::Message& msg : pending) {
        if (Client* owner = find_owner(clients, msg.id)) {
          owner->outbox += net::frame_message(msg);
        }
      }
    }

    // Periodic heartbeats double as dead-client detection: a vanished peer
    // turns the next flush into a write error.
    if (heartbeat_clock.seconds() > 0.5) {
      heartbeat_clock.restart();
      for (const auto& client : clients) {
        if (!client->dead) {
          client->outbox +=
              sim::ipc::encode_frame(sim::ipc::FrameType::kHeartbeat, {});
        }
      }
    }

    // Drained and flushed: exit.
    if (drain_started) {
      bool executor_done = false;
      {
        const MutexLock lock(state.mutex);
        executor_done = state.executor_done;
      }
      bool flushed = true;
      for (const auto& client : clients) {
        if (!client->dead && !client->outbox.empty()) flushed = false;
      }
      if (executor_done && flushed) break;
    }

    std::vector<net::PollFd> fds;
    if (listen_fd >= 0) fds.push_back({listen_fd, false, false, false, false});
    const std::size_t first_client = fds.size();
    // Only these clients have a PollFd; ones accepted below wait a lap.
    const std::size_t polled_clients = clients.size();
    for (const auto& client : clients) {
      fds.push_back(
          {client->fd, !client->outbox.empty(), false, false, false});
    }
    if (!net::poll_sockets(fds, 50)) {
      if (++poll_failures == kPollFailureLimit) {
        std::cerr << "cpc_serve: poll failed " << poll_failures
                  << " times in a row; dropping clients and draining\n";
        // Owners' sweeps stay journaled for resume; the executor finishes
        // the in-flight sweep and exits via the normal drain path.
        for (const auto& client : clients) client->dead = true;
        g_drain = 1;
      }
      continue;  // fd readiness flags are unspecified after a failed poll
    }
    poll_failures = 0;

    if (listen_fd >= 0 && fds[0].readable) {
      while (true) {
        const int fd = net::accept_client(listen_fd);
        if (fd < 0) break;
        auto client = std::make_unique<Client>();
        client->fd = fd;
        clients.push_back(std::move(client));
      }
    }

    for (std::size_t i = 0; i < polled_clients; ++i) {
      Client& client = *clients[i];
      const net::PollFd& poll_fd = fds[first_client + i];
      if (poll_fd.readable || poll_fd.hangup) {
        while (true) {
          const long n = net::read_socket(client.fd, buffer, sizeof(buffer));
          if (n > 0) {
            client.decoder.feed(buffer, static_cast<std::size_t>(n));
            continue;
          }
          if (n < 0) client.dead = true;  // EOF or error
          break;
        }
        sim::ipc::Frame frame;
        while (!client.dead) {
          const sim::ipc::FrameDecoder::Status status =
              client.decoder.next(frame);
          if (status == sim::ipc::FrameDecoder::Status::kNeedMore) break;
          if (status == sim::ipc::FrameDecoder::Status::kCorrupt ||
              !handle_frame(state, flags, clients, client, frame)) {
            client.dead = true;  // the stream cannot be trusted
            break;
          }
        }
      }
      if (!client.dead && !client.outbox.empty() &&
          (poll_fd.writable || poll_fd.hangup)) {
        const long n = net::write_socket(client.fd, client.outbox.data(),
                                         client.outbox.size());
        if (n < 0) {
          client.dead = true;
        } else if (n > 0) {
          client.outbox.erase(0, static_cast<std::size_t>(n));
        }
      }
    }

    for (std::size_t i = 0; i < clients.size();) {
      if (clients[i]->dead) {
        cancel_owned(state, flags, *clients[i]);
        net::close_socket(clients[i]->fd);
        clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  for (const auto& client : clients) {
    int fd = client->fd;
    net::close_socket(fd);
  }
  executor.join();
  net::close_socket(listen_fd);
  net::unlink_socket(flags.socket_path);
  if (!flags.quiet) std::cerr << "cpc_serve: drained, exiting\n";
  return cli::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  ServeFlags flags;
  const auto value_of = [&](int& i, const std::string& arg) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << arg << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.socket_path = v;
    } else if (arg == "--procs") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.procs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--queue-max") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.queue_max =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      if (flags.queue_max == 0) flags.queue_max = 1;
    } else if (arg == "--state-dir") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.state_dir = v;
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return usage();
    }
  }
  if (flags.socket_path.empty()) return usage();

  return cpc::cli::guarded_main([&]() -> int { return serve_main(flags); });
}
