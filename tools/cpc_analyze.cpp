// cpc_analyze — offline analysis of a saved trace: working set, value
// compressibility, 3C miss decomposition for the paper's L1 and L2
// geometries, and a fully-associative capacity sweep from the reuse-
// distance profile.
//
//   cpc_analyze <trace-file>

#include <iostream>

#include "analysis/miss_classifier.hpp"
#include "analysis/working_set.hpp"
#include "compress/classification_stats.hpp"
#include "cpu/trace_io.hpp"
#include "stats/table.hpp"

#include "cli_util.hpp"

int main(int argc, char** argv) {
  using namespace cpc;
  if (argc < 2) {
    std::cerr << "usage: cpc_analyze <trace-file>\n";
    return cli::kExitUsage;
  }

  return cli::guarded_main([&]() -> int {
    const cpu::Trace trace = cpu::read_trace_file(argv[1]);
    std::cout << argv[1] << ": " << trace.size() << " micro-ops\n\n";

    const analysis::WorkingSet ws = analysis::measure_working_set(trace);
    std::cout << "working set: " << ws.footprint_bytes() / 1024 << " KiB ("
              << ws.distinct_lines64 << " 64B lines, " << ws.distinct_words
              << " words; " << ws.heap_words << " heap / " << ws.global_words
              << " global)\n";
    std::cout << "references:  " << ws.loads << " loads, " << ws.stores
              << " stores (" << ws.write_fraction() * 100.0 << "% writes)\n\n";

    compress::ClassificationStats values;
    analysis::MissClassifier l1(cache::kBaselineConfig.l1);
    analysis::MissClassifier l2_like(cache::kBaselineConfig.l2);
    for (const cpu::MicroOp& op : trace) {
      if (!cpu::is_memory_op(op.kind)) continue;
      values.record(op.value, op.addr);
      l1.access(op.addr);
      l2_like.access(op.addr);
    }

    std::cout << "value compressibility (16-bit scheme): "
              << values.compressible_fraction() * 100.0 << "% ("
              << values.small_fraction() * 100.0 << "% small, "
              << values.pointer_fraction() * 100.0 << "% pointer)\n\n";

    stats::Table table("3C miss decomposition (reference stream, paper geometries)",
                       {"miss rate %", "compulsory %", "capacity %", "conflict %"});
    const auto add = [&table](const char* label, const analysis::MissClassifier& mc) {
      const analysis::MissBreakdown& b = mc.breakdown();
      const double misses = static_cast<double>(b.misses());
      table.add_row(label,
                    {b.miss_rate() * 100.0,
                     misses == 0 ? 0.0 : b.compulsory / misses * 100.0,
                     misses == 0 ? 0.0 : b.capacity / misses * 100.0,
                     misses == 0 ? 0.0 : b.conflict / misses * 100.0});
    };
    add("L1 8K DM", l1);
    add("L2 64K 2-way", l2_like);
    std::cout << table.to_ascii(2) << '\n';

    // Capacity sweep from one reuse-distance profile: the miss count of any
    // fully associative LRU cache size, no extra simulation needed.
    analysis::ReuseDistanceProfiler reuse(64);
    for (const cpu::MicroOp& op : trace) {
      if (cpu::is_memory_op(op.kind)) reuse.access(op.addr);
    }
    stats::Table sweep("fully associative LRU miss counts by capacity",
                       {"4K", "8K", "16K", "32K", "64K", "128K", "256K"});
    std::vector<double> cells;
    for (std::uint64_t kb : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
      cells.push_back(static_cast<double>(reuse.misses_at_capacity(kb * 1024 / 64)));
    }
    sweep.add_row("misses", std::move(cells));
    std::cout << sweep.to_ascii(0);
    return cli::kExitOk;
  });
}
