// cpc_run — replay a saved trace on one or all cache configurations and
// print the paper's metrics.
//
//   cpc_run <trace-file> [BC|BCC|HAC|BCP|CPP|all]
//   cpc_run --sweep [--jobs N] <trace-file> [config[,config...]]
//
// --sweep fans the config list across the SweepRunner thread pool (thread
// count from --jobs, else CPC_JOBS, else hardware concurrency) and writes a
// CSV report to stdout with per-job wall time and throughput.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/trace_io.hpp"
#include "sim/experiment.hpp"
#include "sim/job.hpp"
#include "sim/sweep_runner.hpp"
#include "stats/table.hpp"

namespace {

int usage() {
  std::cerr << "usage: cpc_run <trace-file> [BC|BCC|HAC|BCP|CPP|all]\n"
               "       cpc_run --sweep [--jobs N] <trace-file> "
               "[config[,config...]]\n";
  return 2;
}

std::vector<cpc::sim::ConfigKind> parse_configs(
    const std::vector<std::string>& names) {
  using namespace cpc;
  std::vector<sim::ConfigKind> kinds;
  for (const std::string& arg : names) {
    std::stringstream ss{arg};
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (name.empty()) continue;
      if (name == "all") {
        kinds.insert(kinds.end(), std::begin(sim::kAllConfigs),
                     std::end(sim::kAllConfigs));
        continue;
      }
      bool found = false;
      for (sim::ConfigKind kind : sim::kAllConfigs) {
        if (sim::config_name(kind) == name) {
          kinds.push_back(kind);
          found = true;
        }
      }
      if (!found) throw std::runtime_error("unknown configuration '" + name + "'");
    }
  }
  if (kinds.empty()) {
    kinds.assign(std::begin(sim::kAllConfigs), std::end(sim::kAllConfigs));
  }
  return kinds;
}

int run_sweep_mode(const std::string& trace_path,
                   const std::vector<std::string>& config_args,
                   unsigned jobs) {
  using namespace cpc;
  const std::vector<sim::ConfigKind> kinds = parse_configs(config_args);
  const auto trace = std::make_shared<const cpu::Trace>(
      cpu::read_trace_file(trace_path));
  std::cerr << trace_path << ": " << trace->size() << " micro-ops, "
            << kinds.size() << " configuration job(s)\n";

  std::vector<sim::Job> sweep;
  for (sim::ConfigKind kind : kinds) {
    sim::Job job;
    job.trace = trace;
    job.make_hierarchy = [kind] { return sim::make_hierarchy(kind); };
    job.tag = sim::config_name(kind);
    sweep.push_back(std::move(job));
  }

  const sim::SweepRunner runner(jobs);
  const std::vector<sim::JobResult> results = runner.run(std::move(sweep));

  std::cout << "config,cycles,ipc,l1_misses,l2_misses,mem_words,"
               "wall_seconds,ops_per_sec\n";
  for (const sim::JobResult& result : results) {
    if (result.run.core.value_mismatches != 0) {
      std::cerr << "error: " << result.run.core.value_mismatches
                << " value mismatches in " << result.tag << " — corrupt trace?\n";
      return 1;
    }
    std::cout << result.tag << ',' << result.run.core.cycles << ','
              << result.run.core.ipc() << ',' << result.run.hierarchy.l1_misses
              << ',' << result.run.hierarchy.l2_misses << ','
              << result.run.traffic_words() << ',' << result.wall_seconds << ','
              << result.ops_per_second << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpc;

  bool sweep = false;
  unsigned jobs = 0;  // 0 = CPC_JOBS / hardware concurrency
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) return usage();
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) return usage();

  try {
    if (sweep) {
      return run_sweep_mode(
          positional[0],
          {positional.begin() + 1, positional.end()}, jobs);
    }

    const std::string which = positional.size() > 1 ? positional[1] : "all";
    const cpu::Trace trace = cpu::read_trace_file(positional[0]);
    std::cout << positional[0] << ": " << trace.size() << " micro-ops\n\n";

    stats::Table table("replay results",
                       {"cycles", "IPC", "L1 misses", "L2 misses", "mem words"});
    for (sim::ConfigKind kind : sim::kAllConfigs) {
      if (which != "all" && sim::config_name(kind) != which) continue;
      const sim::RunResult r = sim::run_trace(trace, kind);
      if (r.core.value_mismatches != 0) {
        std::cerr << "error: " << r.core.value_mismatches
                  << " value mismatches — corrupt trace?\n";
        return 1;
      }
      table.add_row(r.config, {r.cycles(), r.core.ipc(), r.l1_misses(),
                               r.l2_misses(), r.traffic_words()});
    }
    if (table.rows() == 0) {
      std::cerr << "error: unknown configuration '" << which << "'\n";
      return 2;
    }
    std::cout << table.to_ascii(2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
