// cpc_run — replay a saved trace on one or all cache configurations and
// print the paper's metrics.
//
//   cpc_run [--codecs LIST] <trace-file> [BC|BCC|HAC|BCP|CPP|all]
//   cpc_run --sweep [--codecs LIST] [--jobs N] [--contain] [--retries N]
//           [--timeout-ms N] [--journal PATH] <trace-file>
//           [config[,config...]]
//
// --sweep fans the config list across the SweepRunner thread pool (thread
// count from --jobs, else CPC_JOBS, else hardware concurrency) and writes a
// CSV report to stdout with per-job wall time and throughput.
//
// --codecs crosses the config list with a compression-codec list
// ("paper,fpc,bdi,wkdm" or "all"; net/protocol.hpp grammar) into a
// (config × codec) grid. Passing the flag — even as "--codecs paper" —
// switches sweep output to the extended codec CSV schema
// (tools/sweep_csv.hpp), which adds the per-codec line-accounting survey;
// without the flag output is bit-identical to the pre-codec tool.
//
// --contain switches the sweep to fault-contained execution: a failing job
// is reported (with optional --retries) and the remaining jobs still run;
// --timeout-ms arms the per-job watchdog (default from CPC_JOB_TIMEOUT_MS);
// --journal checkpoints completed jobs so a killed sweep resumes where it
// left off. Any of --retries/--timeout-ms/--journal implies --contain.
//
// --procs N (or CPC_PROCS) shards the sweep across N supervised worker
// processes (sim/shard_supervisor.hpp): a worker crash, hang or OOM kill
// is contained and its jobs re-run, and merged output stays bit-identical
// to the serial run. Implies --contain.

#include <array>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/codec_survey.hpp"
#include "compress/codec.hpp"
#include "cpu/trace_io.hpp"
#include "net/protocol.hpp"
#include "sim/experiment.hpp"
#include "sim/job.hpp"
#include "sim/shard_supervisor.hpp"
#include "sim/sweep_runner.hpp"
#include "stats/table.hpp"

#include "cli_util.hpp"
#include "sweep_csv.hpp"

namespace {

int usage() {
  std::cerr << "usage: cpc_run [--codecs LIST] <trace-file>"
               " [BC|BCC|HAC|BCP|CPP|all]\n"
               "       cpc_run --sweep [--codecs LIST] [--jobs N] [--procs N]\n"
               "               [--contain] [--retries N] [--timeout-ms N]\n"
               "               [--journal PATH] <trace-file>"
               " [config[,config...]]\n"
               "  LIST: paper,fpc,bdi,wkdm or all\n";
  return cpc::cli::kExitUsage;
}

/// Joins the positional config arguments and defers to the shared grammar
/// (net/protocol.hpp) — the same parser the cpc_serve daemon applies to a
/// submitted job spec, so CLI and service reject exactly the same inputs.
cpc::net::JobGrid parse_grid(const std::vector<std::string>& names,
                             const std::string& codecs_csv) {
  using namespace cpc;
  std::string csv;
  for (const std::string& arg : names) {
    if (!csv.empty()) csv += ',';
    csv += arg;
  }
  try {
    return net::parse_job_grid(csv, codecs_csv);
  } catch (const std::invalid_argument& error) {
    throw cli::BadInput(error.what());
  }
}

struct SweepFlags {
  unsigned jobs = 0;  // 0 = CPC_JOBS / hardware concurrency
  bool contain = false;
  /// Process-sharded execution (--procs / CPC_PROCS). 0 = in-process sweep.
  unsigned procs = 0;
  /// --codecs value; empty = flag absent = paper codec, legacy output.
  std::string codecs;
  bool codec_mode = false;  ///< --codecs was passed: extended CSV schema
  cpc::sim::RunOptions options = cpc::sim::RunOptions::from_env();
};

int run_sweep_mode(const std::string& trace_path,
                   const std::vector<std::string>& config_args,
                   const SweepFlags& flags) {
  using namespace cpc;
  const net::JobGrid grid = parse_grid(config_args, flags.codecs);
  const auto trace = std::make_shared<const cpu::Trace>(
      cpu::read_trace_file(trace_path));
  std::cerr << trace_path << ": " << trace->size() << " micro-ops, "
            << grid.job_count() << " configuration job(s)\n";

  // Config-major expansion, matching net::JobGrid::job_count and the
  // cpc_serve executor, so journals written by either surface line up.
  std::vector<sim::Job> sweep;
  for (sim::ConfigKind kind : grid.configs) {
    for (compress::CodecKind codec_kind : grid.codecs) {
      const compress::Codec codec{codec_kind};
      sim::Job job;
      job.trace = trace;
      job.make_hierarchy = [kind, codec] {
        return sim::make_hierarchy(kind, codec);
      };
      job.tag = sim::config_codec_tag(kind, codec);
      sweep.push_back(std::move(job));
    }
  }

  const sim::SweepRunner runner(flags.jobs);
  std::vector<sim::JobResult> results;
  std::vector<sim::JobFailure> failures;
  sim::ShardOptions shard = sim::ShardOptions::from_env();  // reads CPC_PROCS
  const bool sharded = flags.procs > 0 || shard.procs > 0;
  if (flags.procs > 0) shard.procs = flags.procs;
  if (sharded) {
    shard.run = flags.options;
    sim::RunReport report = runner.run_sharded(std::move(sweep), shard);
    results = std::move(report.results);
    failures = std::move(report.failures);
  } else if (flags.contain) {
    sim::RunReport report = runner.run_contained(std::move(sweep), flags.options);
    results = std::move(report.results);
    failures = std::move(report.failures);
  } else {
    results = runner.run(std::move(sweep));
  }

  // The per-codec line-accounting survey is a trace property, not a config
  // property: compute it once per codec, on first use.
  std::array<std::optional<compress::ClassificationStats>,
             compress::kCodecKindCount>
      surveys;
  std::cout << (flags.codec_mode ? cli::kCodecSweepCsvHeader
                                 : cli::kSweepCsvHeader)
            << '\n';
  for (const sim::JobResult& result : results) {
    if ((flags.contain || sharded) && !result.ok) continue;  // reported below
    if (result.run.core.value_mismatches != 0) {
      throw cli::BadInput(std::to_string(result.run.core.value_mismatches) +
                          " value mismatches in " + result.tag +
                          " — corrupt trace?");
    }
    if (!flags.codec_mode) {
      cli::print_sweep_csv_row(std::cout, result);
      continue;
    }
    const sim::ConfigKind kind =
        grid.configs[result.index / grid.codecs.size()];
    const compress::Codec codec{grid.codecs[result.index %
                                            grid.codecs.size()]};
    auto& survey = surveys[static_cast<std::size_t>(codec.kind())];
    if (!survey) survey = analysis::survey_codec(*trace, codec);
    cli::print_codec_sweep_csv_row(std::cout, result, sim::config_name(kind),
                                   codec, *survey);
  }
  for (const sim::JobFailure& failure : failures) {
    std::cerr << "job " << failure.index << " ("
              << (failure.tag.empty() ? "untagged" : failure.tag) << ") failed"
              << (failure.timed_out ? " [timeout]" : "") << " after "
              << failure.attempts << " attempt(s): " << failure.what << '\n';
  }
  if (!failures.empty()) {
    // An invariant violation in any job dominates the exit code.
    for (const sim::JobFailure& failure : failures) {
      if (failure.diagnostic &&
          failure.diagnostic->invariant != Invariant::kGeneric) {
        return cli::kExitInvariant;
      }
    }
    return cli::kExitError;
  }
  return cli::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpc;

  bool sweep = false;
  SweepFlags flags;
  std::vector<std::string> positional;
  const auto value_of = [&](int& i, const std::string& arg) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << arg << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--jobs") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      flags.jobs =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--contain") {
      flags.contain = true;
    } else if (arg == "--procs") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.procs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg.rfind("--procs=", 0) == 0) {
      flags.procs =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 8, nullptr, 10));
    } else if (arg == "--retries") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.contain = true;
      flags.options.retries =
          static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--timeout-ms") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.contain = true;
      flags.options.job_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--journal") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.contain = true;
      flags.options.journal_path = v;
    } else if (arg == "--codecs") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.codecs = v;
      flags.codec_mode = true;
    } else if (arg.rfind("--codecs=", 0) == 0) {
      flags.codecs = arg.substr(9);
      flags.codec_mode = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) return usage();

  return cli::guarded_main([&]() -> int {
    if (sweep) {
      return run_sweep_mode(
          positional[0], {positional.begin() + 1, positional.end()}, flags);
    }

    const std::string which = positional.size() > 1 ? positional[1] : "all";
    std::vector<compress::CodecKind> codecs;
    try {
      codecs = net::parse_codec_list(flags.codecs);
    } catch (const std::invalid_argument& error) {
      throw cli::BadInput(error.what());
    }
    const cpu::Trace trace = cpu::read_trace_file(positional[0]);
    std::cout << positional[0] << ": " << trace.size() << " micro-ops\n\n";

    stats::Table table("replay results",
                       {"cycles", "IPC", "L1 misses", "L2 misses", "mem words"});
    for (sim::ConfigKind kind : sim::kAllConfigs) {
      if (which != "all" && sim::config_name(kind) != which) continue;
      for (const compress::CodecKind codec_kind : codecs) {
        const compress::Codec codec{codec_kind};
        auto hierarchy = sim::make_hierarchy(kind, codec);
        const sim::RunResult r = sim::run_trace_on(trace, *hierarchy);
        if (r.core.value_mismatches != 0) {
          throw cli::BadInput(std::to_string(r.core.value_mismatches) +
                              " value mismatches — corrupt trace?");
        }
        table.add_row(sim::config_codec_tag(kind, codec),
                      {r.cycles(), r.core.ipc(), r.l1_misses(), r.l2_misses(),
                       r.traffic_words()});
      }
    }
    if (table.rows() == 0) {
      throw cli::BadInput("unknown configuration '" + which +
                          "' (expected BC, BCC, HAC, BCP, CPP or all)");
    }
    std::cout << table.to_ascii(2);
    if (flags.codec_mode) {
      // Touché-style accounting over the trace's final memory image: how
      // well each codec compresses once its own metadata is paid for.
      stats::Table codec_table(
          "codec line accounting (final memory image)",
          {"comp ratio", "tag overhead %", "tag bits/line"});
      for (const compress::CodecKind codec_kind : codecs) {
        const compress::Codec codec{codec_kind};
        const compress::ClassificationStats survey =
            analysis::survey_codec(trace, codec);
        codec_table.add_row(std::string(codec.name()),
                            {survey.line_compression_ratio(),
                             survey.tag_overhead_fraction() * 100.0,
                             survey.tag_bits_per_line()});
      }
      std::cout << '\n' << codec_table.to_ascii(2);
    }
    return cli::kExitOk;
  });
}
