// cpc_run — replay a saved trace on one or all cache configurations and
// print the paper's metrics.
//
//   cpc_run <trace-file> [BC|BCC|HAC|BCP|CPP|all]

#include <iostream>

#include "cpu/trace_io.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace cpc;
  if (argc < 2) {
    std::cerr << "usage: cpc_run <trace-file> [BC|BCC|HAC|BCP|CPP|all]\n";
    return 2;
  }
  const std::string which = argc > 2 ? argv[2] : "all";

  try {
    const cpu::Trace trace = cpu::read_trace_file(argv[1]);
    std::cout << argv[1] << ": " << trace.size() << " micro-ops\n\n";

    stats::Table table("replay results",
                       {"cycles", "IPC", "L1 misses", "L2 misses", "mem words"});
    for (sim::ConfigKind kind : sim::kAllConfigs) {
      if (which != "all" && sim::config_name(kind) != which) continue;
      const sim::RunResult r = sim::run_trace(trace, kind);
      if (r.core.value_mismatches != 0) {
        std::cerr << "error: " << r.core.value_mismatches
                  << " value mismatches — corrupt trace?\n";
        return 1;
      }
      table.add_row(r.config, {r.cycles(), r.core.ipc(), r.l1_misses(),
                               r.l2_misses(), r.traffic_words()});
    }
    if (table.rows() == 0) {
      std::cerr << "error: unknown configuration '" << which << "'\n";
      return 2;
    }
    std::cout << table.to_ascii(2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
