// cpc_fuzz — property-based differential fuzzing of all five hierarchies.
//
//   cpc_fuzz [--budget-sec N | --iters N] [--ops N] [--seed S]
//            [--seed-from-ci] [--jobs N] [--out DIR]
//   cpc_fuzz --self-check [--ops N] [--seed S] [--out DIR]
//   cpc_fuzz --replay FILE.repro
//
// The fuzz loop generates seeded adversarial traces (compressibility
// boundaries, 32K-edge pointer chains, affiliated ping-pong, eviction
// storms, RMW races) and drives each through BC/BCC/HAC/BCP/CPP under the
// shadow oracle plus cross-config metamorphic checks. Any divergence is
// shrunk to a minimal reproducer, written to --out (default
// fuzz-artifacts/), and the run exits 1.
//
// --self-check proves the oracle's teeth end to end: it arms a seeded
// payload-bit strike on the CPP configuration, requires the shadow model
// to catch the resulting wrong load, shrinks the trace to a <=64-access
// reproducer, and (with --out) writes the corpus entry. Exit 0 iff the
// fault was caught and the reproducer replays.
//
// --replay runs one committed .repro case and verifies its expectation
// (clean, or divergence for fault reproducers). CTest replays the corpus.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "cpu/trace_io.hpp"
#include "sim/bench_meter.hpp"
#include "verify/oracle/differential.hpp"
#include "verify/trace_fuzzer.hpp"

#include "cli_util.hpp"

namespace {

using namespace cpc;

int usage() {
  std::cerr << "usage: cpc_fuzz [--budget-sec N | --iters N] [--ops N]\n"
               "                [--seed S] [--seed-from-ci] [--jobs N] [--out DIR]\n"
               "       cpc_fuzz --self-check [--ops N] [--seed S] [--out DIR]\n"
               "       cpc_fuzz --replay FILE.repro\n";
  return cli::kExitUsage;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t iter) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (iter + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x ? x : 1;
}

std::uint64_t count_accesses(const cpu::Trace& trace) {
  std::uint64_t n = 0;
  for (const cpu::MicroOp& op : trace) {
    if (cpu::is_memory_op(op.kind)) ++n;
  }
  return n;
}

verify::DifferentialReport run_once(const cpu::Trace& trace,
                                    const verify::DifferentialOptions& options) {
  auto shared = std::make_shared<const cpu::Trace>(trace);
  return verify::run_differential(shared, options);
}

/// Fuzz loop: clean differential runs until the budget is spent; the first
/// divergence is shrunk and archived.
int fuzz(std::uint64_t seed, std::uint32_t ops, double budget_sec,
         std::uint64_t iters, unsigned jobs, const std::string& out_dir) {
  const sim::Stopwatch timer;  // the sanctioned clock (CPC-L008)
  const auto elapsed = [&] { return timer.seconds(); };

  verify::DifferentialOptions options;
  options.jobs = jobs;

  std::uint64_t iter = 0;
  std::uint64_t total_ops = 0;
  while (true) {
    if (iters != 0 && iter >= iters) break;
    if (iters == 0 && elapsed() >= budget_sec) break;

    const std::uint64_t iter_seed = mix_seed(seed, iter);
    verify::FuzzOptions fuzz_options;
    fuzz_options.seed = iter_seed;
    fuzz_options.target_ops = ops;
    cpu::Trace trace = verify::TraceFuzzer(fuzz_options).generate();
    total_ops += trace.size();

    verify::DifferentialReport report = run_once(trace, options);
    if (!report.clean()) {
      std::cerr << "divergence at iteration " << iter << " (seed 0x" << std::hex
                << iter_seed << std::dec << "):\n"
                << report.summary();
      const auto still_fails = [&](const cpu::Trace& candidate) {
        return !run_once(candidate, options).clean();
      };
      verify::ShrinkStats stats;
      cpu::Trace shrunk =
          verify::shrink_trace(std::move(trace), still_fails, {}, &stats);
      std::cerr << "shrunk to " << shrunk.size() << " ops ("
                << count_accesses(shrunk) << " accesses, " << stats.evaluations
                << " evaluations)\n";

      verify::ReproCase repro;
      repro.name = "divergence-seed-" + std::to_string(iter_seed);
      repro.trace = std::move(shrunk);
      repro.expect_divergence = true;
      repro.origin_seed = iter_seed;
      repro.fill_seed = fuzz_options.fill_seed;
      verify::save_repro(out_dir, repro);
      std::cerr << "reproducer written to " << out_dir << '/' << repro.name
                << ".repro\n";
      return cli::kExitError;
    }
    ++iter;
  }

  std::cout << "fuzz: " << iter << " iterations, " << total_ops
            << " ops across 5 configs, 0 divergences ("
            << static_cast<int>(elapsed()) << "s)\n";
  return cli::kExitOk;
}

/// Proves the oracle catches a real injected fault and that shrinking
/// yields a small, replayable reproducer.
int self_check(std::uint64_t seed, std::uint32_t ops,
               const std::string& out_dir) {
  // The injected fault is a *laundered* payload strike: the bit flips and
  // the line ECC is recomputed over the corrupted state, so every internal
  // audit passes and only the shadow oracle can witness the wrong
  // architectural value. (A plain kPayloadBit is always caught first by the
  // CPP cache's own ECC audits — by design of the PR 2 fault campaign.)
  // (trigger, seed) pairs are scanned because any one strike can be masked
  // — the victim word may be overwritten or evicted-clean before a load
  // reads it — and the trigger must stay small so the shrunk reproducer
  // fits in 64 accesses (a fault at access N needs N accesses to fire).
  verify::DifferentialOptions options;
  options.fault_config = sim::ConfigKind::kCPP;
  cpu::Trace trace;
  verify::FuzzOptions fuzz_options;
  std::optional<verify::FaultPlan> caught;
  for (std::uint64_t attempt = 0; attempt < 4 && !caught; ++attempt) {
    fuzz_options.seed = mix_seed(seed, attempt);
    fuzz_options.target_ops = ops;
    trace = verify::TraceFuzzer(fuzz_options).generate();
    for (const std::uint64_t trigger : {8, 16, 24, 32, 48}) {
      for (std::uint64_t fault_seed = 1; fault_seed <= 32 && !caught;
           ++fault_seed) {
        verify::FaultPlan plan;
        plan.command.kind = verify::FaultKind::kPayloadBitSilent;
        plan.command.level = 1;
        plan.command.seed = fault_seed;
        plan.trigger_access = trigger;
        options.fault = plan;
        const verify::DifferentialReport report = run_once(trace, options);
        if (report.total_divergences() > 0) caught = plan;
      }
      if (caught) break;
    }
  }
  if (!caught) {
    std::cerr << "self-check FAILED: no payload-bit-silent strike produced "
                 "an oracle-visible divergence\n";
    return cli::kExitError;
  }
  options.fault = caught;
  std::cerr << "self-check: oracle caught payload-bit-silent seed "
            << caught->command.seed << " at trigger "
            << caught->trigger_access << "; shrinking...\n";

  const auto still_fails = [&](const cpu::Trace& candidate) {
    return run_once(candidate, options).total_divergences() > 0;
  };
  verify::ShrinkStats stats;
  cpu::Trace shrunk = verify::shrink_trace(trace, still_fails, {}, &stats);
  const std::uint64_t accesses = count_accesses(shrunk);
  std::cerr << "self-check: shrunk " << trace.size() << " -> " << shrunk.size()
            << " ops (" << accesses << " accesses, " << stats.evaluations
            << " evaluations)\n";
  if (accesses > 64) {
    std::cerr << "self-check FAILED: reproducer has " << accesses
              << " accesses (> 64)\n";
    return cli::kExitError;
  }
  if (!still_fails(shrunk)) {
    std::cerr << "self-check FAILED: shrunk trace no longer diverges\n";
    return cli::kExitError;
  }

  if (!out_dir.empty()) {
    verify::ReproCase repro;
    repro.name = "payload-bit-cpp-seed-" + std::to_string(seed);
    repro.trace = std::move(shrunk);
    repro.expect_divergence = true;
    repro.fault = caught;
    repro.fault_config = sim::ConfigKind::kCPP;
    repro.origin_seed = seed;
    repro.fill_seed = fuzz_options.fill_seed;
    verify::save_repro(out_dir, repro);

    // Round-trip: the committed artifact must reproduce on its own.
    const verify::ReproCase loaded = verify::load_repro(
        out_dir + "/" + repro.name + ".repro");
    verify::DifferentialOptions replay_options;
    replay_options.fault = loaded.fault;
    replay_options.fault_config = loaded.fault_config;
    if (run_once(loaded.trace, replay_options).total_divergences() == 0) {
      std::cerr << "self-check FAILED: saved reproducer does not replay\n";
      return cli::kExitError;
    }
    std::cerr << "self-check: corpus entry " << repro.name << " replays\n";
  }
  std::cout << "self-check: PASS\n";
  return cli::kExitOk;
}

int replay(const std::string& repro_path) {
  const verify::ReproCase repro = verify::load_repro(repro_path);
  verify::DifferentialOptions options;
  options.fault = repro.fault;
  options.fault_config = repro.fault_config;
  const verify::DifferentialReport report = run_once(repro.trace, options);

  if (repro.expect_divergence) {
    if (report.total_divergences() == 0) {
      std::cerr << "replay FAILED: " << repro.name
                << " expected a divergence, got none\n"
                << report.summary();
      return cli::kExitError;
    }
  } else if (!report.clean()) {
    std::cerr << "replay FAILED: " << repro.name << " expected clean\n"
              << report.summary();
    return cli::kExitError;
  }
  std::cout << "replay: " << repro.name << " ok ("
            << report.total_divergences() << " divergences, as expected)\n";
  return cli::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  double budget_sec = 10.0;
  std::uint64_t iters = 0;
  std::uint64_t seed = 1;
  std::uint32_t ops = 2048;
  unsigned jobs = 0;
  std::string out_dir = "fuzz-artifacts";
  std::string replay_path;
  bool do_self_check = false;
  bool seed_from_ci = false;

  const auto value_of = [&](int& i, const std::string& arg) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << arg << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--budget-sec") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      budget_sec = std::strtod(v, nullptr);
    } else if (arg == "--iters") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      iters = std::strtoull(v, nullptr, 0);
    } else if (arg == "--ops") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      ops = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--seed") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--seed-from-ci") {
      seed_from_ci = true;
    } else if (arg == "--jobs") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--out") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      out_dir = v;
    } else if (arg == "--self-check") {
      do_self_check = true;
    } else if (arg == "--replay") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      replay_path = v;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return usage();
    }
  }
  if (ops == 0) {
    std::cerr << "error: --ops must be positive\n";
    return usage();
  }
  if (seed_from_ci) {
    // Nightly CI rotates the seed with the run id, so successive nights
    // explore different traces while any night stays reproducible from its
    // log line.
    if (const char* run_id = std::getenv("GITHUB_RUN_ID")) {
      seed = mix_seed(std::strtoull(run_id, nullptr, 10), 0);
    }
    std::cerr << "fuzz: seed 0x" << std::hex << seed << std::dec << '\n';
  }

  return cpc::cli::guarded_main([&]() -> int {
    if (!replay_path.empty()) return replay(replay_path);
    if (do_self_check) return self_check(seed, ops, out_dir);
    return fuzz(seed, ops, budget_sec, iters, jobs, out_dir);
  });
}
