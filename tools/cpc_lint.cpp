// cpc_lint — the project's own static-analysis pass.
//
// A deliberately dependency-free (no libclang) token/regex linter that
// enforces the repository invariants a generic tool cannot know about.
// Each finding carries a stable check ID:
//
//   CPC-L001  entropy / wall-clock ban. Simulations must be bit-reproducible
//             from their seeds: rand()/srand(), std::random_device, time(),
//             clock(), localtime/gmtime, system_clock and
//             high_resolution_clock are banned everywhere; steady_clock is
//             banned in src/ outside src/sim/ (wall-clock timing is a sweep
//             concern). workload/rng.hpp — the one sanctioned seed source —
//             is exempt. Seeded mt19937 engines are fine anywhere.
//   CPC-L002  no iteration over unordered containers that feeds stats or
//             journal output: unordered iteration order is
//             implementation-defined and silently breaks reproducibility.
//             Waive only with a commutativity argument.
//   CPC-L003  switches over project `enum class` types must enumerate every
//             enumerator (so adding one is a -Wswitch build error at every
//             site) — a `default:` needs an explicit waiver.
//   CPC-L004  no naked std::runtime_error/std::logic_error throws in
//             src/cache/ and src/core/, where every failure should be a
//             structured cpc::Diagnostic (InvariantViolation).
//   CPC-L005  header hygiene: `#pragma once` must be a header's first
//             directive; `using namespace` never appears in a header.
//   CPC-L006  include layering: a directory may only include headers from
//             its own rank or below (common < mem/stats/compress < cache <
//             cpu/core < workload/analysis < sim < verify < net;
//             tools/tests/bench are unranked). verify/fault.hpp is a
//             documented rank-0 leaf.
//   CPC-L007  registry sync: the enumerators of cpc::Invariant and
//             cpc::verify::FaultKind must match their X-macro .def registry
//             rows one-to-one and in order. (The build's static_asserts
//             catch deleted rows; this catches the textual direction so a
//             mismatch is reported with names before you even compile.)
//   CPC-L008  centralized timing: direct std::chrono use (including the
//             <chrono> include) is banned in src/, tools/ and bench/ outside
//             the sanctioned clock sites — sim/bench_meter.{hpp,cpp} (the
//             Stopwatch), sim/sweep_runner.cpp (watchdog deadline
//             arithmetic) and common/mutex.hpp (CondVar::wait_for takes a
//             chrono duration). Everything else times through
//             sim::Stopwatch so benchmark numbers share one clock.
//   CPC-L009  centralized process management: raw fork()/vfork()/waitpid()/
//             wait3()/wait4()/pipe()/pipe2()/kill()/killpg() calls are
//             banned in src/, tools/ and bench/ outside sim/ipc.cpp and
//             sim/shard_supervisor.cpp.
//             Process supervision concentrates in the ipc layer so signal
//             handling, EINTR retries, fd hygiene and sanitizer caveats are
//             solved once — everything else shards through
//             sim::ipc::spawn_worker / ShardSupervisor.
//   CPC-L010  centralized socket management: raw socket()/bind()/listen()/
//             accept()/connect()/setsockopt()/sendmsg()/recvmsg()/... calls
//             are banned in src/, tools/ and bench/ outside net/socket.cpp,
//             and raw poll()/ppoll() outside net/socket.cpp and sim/ipc.cpp.
//             Socket setup (SIGPIPE suppression, nonblocking accept, EINTR
//             retries, sun_path length limits) lives once in cpc::net;
//             everything else talks through net/socket.hpp.
//
// Waivers: append `// cpc-lint: allow(CPC-LXXX)` to the offending line, or
// place it on its own comment line directly above. Waivers are per-line and
// per-check; a waiver comment with several IDs allows them all.
//
// Usage:  cpc_lint <path>...
// Paths may be files or directories (searched recursively for C++ sources).
// Directory walks skip anything under a `lint/fixtures` directory — the
// seeded-violation corpus — unless such a path is passed explicitly.
// Fixture files under `lint/fixtures/<virtual path>` are categorised by
// their virtual path, so a fixture can impersonate e.g. src/cache/.
//
// Exit codes follow the CLI contract: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string id;
  std::string message;
};

struct SourceFile {
  fs::path path;
  std::string display;                 // generic path as given/walked
  std::vector<std::string> components; // virtual components (fixture-aware)
  std::string category;                // "src", "tools", "tests", "bench", ...
  std::string src_dir;                 // directory under src/, if any
  bool is_header = false;
  std::vector<std::string> raw;        // original lines
  std::vector<std::string> code;       // comment- and string-stripped lines
  std::vector<std::set<std::string>> waivers;  // per line (0-based)
};

struct EnumDef {
  std::string file;
  std::size_t line = 0;
  std::vector<std::string> enumerators;
  bool ambiguous = false;  // same name defined differently in two files
};

// ---------------------------------------------------------------------------
// Source preparation
// ---------------------------------------------------------------------------

/// Strips //- and /**/-comments and the contents of string/char literals so
/// downstream regexes never match inside either. Literal delimiters are kept
/// (an empty "" remains) so token shapes stay recognisable.
std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        code += quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          ++i;
        }
        code += quote;  // unterminated literals just end with the line
        continue;
      }
      code += c;
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c); });
}

/// Parses `// cpc-lint: allow(CPC-LXXX[, ...])` waivers. A waiver on a line
/// with code applies to that line; a waiver on a comment-only line applies
/// to the next line that has code.
void collect_waivers(SourceFile& f) {
  static const std::regex kWaiver(R"(cpc-lint:\s*allow\(([^)]*)\))");
  f.waivers.assign(f.raw.size(), {});
  std::set<std::string> pending;
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    std::set<std::string> here;
    std::smatch m;
    std::string rest = f.raw[i];
    while (std::regex_search(rest, m, kWaiver)) {
      std::string ids = m[1];
      std::replace(ids.begin(), ids.end(), ',', ' ');
      std::istringstream tokens(ids);
      std::string id;
      while (tokens >> id) here.insert(id);
      rest = m.suffix();
    }
    if (blank(f.code[i])) {
      pending.insert(here.begin(), here.end());
      continue;
    }
    here.insert(pending.begin(), pending.end());
    pending.clear();
    f.waivers[i] = std::move(here);
  }
}

/// Fills in category / src_dir from the path, looking through a
/// `lint/fixtures/` prefix so fixtures are categorised by the virtual tree
/// they impersonate.
void categorise(SourceFile& f) {
  std::vector<std::string> parts;
  for (const fs::path& p : f.path) parts.push_back(p.generic_string());
  // Fixture re-rooting: categorise by what follows lint/fixtures/.
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "lint" && parts[i + 1] == "fixtures") {
      parts.erase(parts.begin(), parts.begin() + static_cast<long>(i) + 2);
      break;
    }
  }
  f.components = parts;
  static const std::set<std::string> kTops = {"src",   "tools",    "tests",
                                             "bench", "examples", "scripts"};
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (kTops.count(parts[i])) {
      f.category = parts[i];
      if (parts[i] == "src" && i + 2 < parts.size()) f.src_dir = parts[i + 1];
      break;
    }
  }
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void report(std::vector<Finding>& findings, const SourceFile& f,
            std::size_t line_1based, const std::string& id,
            std::string message) {
  const std::size_t idx = line_1based == 0 ? 0 : line_1based - 1;
  if (idx < f.waivers.size() && f.waivers[idx].count(id)) return;
  findings.push_back({f.display, line_1based, id, std::move(message)});
}

// ---------------------------------------------------------------------------
// CPC-L001 — entropy / wall-clock ban
// ---------------------------------------------------------------------------

void check_l001(const SourceFile& f, std::vector<Finding>& findings) {
  if (ends_with(f.display, "workload/rng.hpp")) return;  // the seed source
  struct Ban {
    std::regex pattern;
    const char* what;
  };
  static const std::vector<Ban> kBans = {
      {std::regex(R"(\brand\s*\()"), "rand() — use a seeded workload RNG"},
      {std::regex(R"(\bsrand\s*\()"), "srand() — use a seeded workload RNG"},
      {std::regex(R"(\brandom_device\b)"),
       "std::random_device — nondeterministic entropy"},
      {std::regex(R"(\btime\s*\()"), "time() — wall clock"},
      {std::regex(R"(\bclock\s*\()"), "clock() — wall clock"},
      {std::regex(R"(\blocaltime\b)"), "localtime — wall clock"},
      {std::regex(R"(\bgmtime\b)"), "gmtime — wall clock"},
      {std::regex(R"(\bsystem_clock\b)"), "system_clock — wall clock"},
      {std::regex(R"(\bhigh_resolution_clock\b)"),
       "high_resolution_clock — may alias system_clock"},
  };
  static const std::regex kSteady(R"(\bsteady_clock\b)");
  const bool steady_banned = f.category == "src" && f.src_dir != "sim";
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const Ban& ban : kBans) {
      if (std::regex_search(f.code[i], ban.pattern)) {
        report(findings, f, i + 1, "CPC-L001",
               std::string("banned entropy/wall-clock source: ") + ban.what);
      }
    }
    if (steady_banned && std::regex_search(f.code[i], kSteady)) {
      report(findings, f, i + 1, "CPC-L001",
             "steady_clock outside src/sim/ — simulated time is the only "
             "clock the model may read");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L002 — unordered-container iteration
// ---------------------------------------------------------------------------

void check_l002(const SourceFile& f, std::vector<Finding>& findings) {
  // Collect names declared with an unordered container type in this file.
  static const std::regex kDecl(
      R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  std::set<std::string> names;
  for (const std::string& line : f.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      // Walk the template argument list to its closing '>', then take the
      // next identifier as the declared name (if the declaration fits on
      // one line, which repo style guarantees for members).
      std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
      int depth = 1;
      while (pos < line.size() && depth > 0) {
        if (line[pos] == '<') ++depth;
        if (line[pos] == '>') --depth;
        ++pos;
      }
      static const std::regex kName(R"(^\s*([A-Za-z_]\w*))");
      std::smatch m;
      const std::string tail = line.substr(pos);
      if (std::regex_search(tail, m, kName)) {
        const std::string name = m[1];
        if (name != "iterator" && name != "const_iterator") names.insert(name);
      }
    }
  }
  if (names.empty()) return;
  for (const std::string& name : names) {
    const std::regex range_for(R"(for\s*\([^;{}]*:\s*(?:this->)?)" + name +
                               R"(\s*\))");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (std::regex_search(f.code[i], range_for) ||
          std::regex_search(
              f.code[i],
              std::regex("\\b" + name + R"(\s*\.\s*c?begin\s*\()"))) {
        report(findings, f, i + 1, "CPC-L002",
               "iteration over unordered container '" + name +
                   "' — order is implementation-defined; waive only with a "
                   "commutativity argument");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L003 — exhaustive enum switches
// ---------------------------------------------------------------------------

/// Joined view of the stripped file, with a char-offset → line mapping.
struct JoinedCode {
  std::string text;
  std::vector<std::size_t> line_start;  // offset of each line in `text`

  explicit JoinedCode(const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
      line_start.push_back(text.size());
      text += line;
      text += '\n';
    }
  }
  std::size_t line_of(std::size_t offset) const {  // 1-based
    const auto it =
        std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

void collect_enums(const SourceFile& f, std::map<std::string, EnumDef>& enums) {
  const JoinedCode joined(f.code);
  static const std::regex kEnum(R"(\benum\s+class\s+([A-Za-z_]\w*)[^{;]*\{)");
  for (std::sregex_iterator it(joined.text.begin(), joined.text.end(), kEnum),
       end;
       it != end; ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    const std::size_t close = joined.text.find('}', open);
    if (close == std::string::npos) continue;
    EnumDef def;
    def.file = f.display;
    def.line = joined.line_of(static_cast<std::size_t>(it->position()));
    std::istringstream body(
        joined.text.substr(open + 1, close - open - 1));
    std::string item;
    while (std::getline(body, item, ',')) {
      std::istringstream words(item);
      std::string name;
      if (words >> name) {
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) name = name.substr(0, eq);
        if (!name.empty()) def.enumerators.push_back(name);
      }
    }
    if (def.enumerators.empty()) continue;
    const std::string enum_name = (*it)[1];
    auto [existing, inserted] = enums.emplace(enum_name, def);
    if (!inserted && existing->second.enumerators != def.enumerators) {
      existing->second.ambiguous = true;  // two unrelated enums share a name
    }
  }
}

void check_l003(const SourceFile& f,
                const std::map<std::string, EnumDef>& enums,
                std::vector<Finding>& findings) {
  const JoinedCode joined(f.code);
  const std::string& text = joined.text;
  static const std::regex kSwitch(R"(\bswitch\s*\()");
  // The label must end on a word char: with a bare `[\w:]+` a label whose
  // next statement begins with `::` (e.g. `::_Exit(3);`) greedily matches
  // `Enum::kValue:` as the capture and the statement's colon as the
  // terminator, mangling the enumerator name.
  static const std::regex kCase(R"(\bcase\s+([\w:]*\w)\s*:)");
  static const std::regex kDefault(R"(\bdefault\s*:)");
  for (std::sregex_iterator it(text.begin(), text.end(), kSwitch), end;
       it != end; ++it) {
    // Find the switch body: matching ')' then its '{' ... '}' extent.
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int paren = 1;
    while (pos < text.size() && paren > 0) {
      if (text[pos] == '(') ++paren;
      if (text[pos] == ')') --paren;
      ++pos;
    }
    while (pos < text.size() && text[pos] != '{') ++pos;
    if (pos >= text.size()) continue;
    const std::size_t body_open = pos++;
    int depth = 1;
    std::vector<std::pair<std::size_t, std::size_t>> depth1;  // [from,to)
    std::size_t segment = pos;
    while (pos < text.size() && depth > 0) {
      if (text[pos] == '{') {
        if (depth == 1) depth1.emplace_back(segment, pos);
        ++depth;
      } else if (text[pos] == '}') {
        --depth;
        if (depth == 1) segment = pos + 1;
      }
      ++pos;
    }
    if (depth == 0 && segment < pos - 1) depth1.emplace_back(segment, pos - 1);

    // Case labels directly inside this switch (not in nested switches).
    std::set<std::string> cased;
    std::string enum_name;
    std::optional<std::size_t> default_off;
    for (const auto& [from, to] : depth1) {
      const std::string seg = text.substr(from, to - from);
      for (std::sregex_iterator c(seg.begin(), seg.end(), kCase), cend;
           c != cend; ++c) {
        const std::string label = (*c)[1];
        const std::size_t last = label.rfind("::");
        if (last == std::string::npos) continue;  // int switch — not ours
        cased.insert(label.substr(last + 2));
        std::string qualifier = label.substr(0, last);
        const std::size_t prev = qualifier.rfind("::");
        if (prev != std::string::npos) qualifier = qualifier.substr(prev + 2);
        enum_name = qualifier;
      }
      std::smatch d;
      if (!default_off && std::regex_search(seg, d, kDefault)) {
        default_off = from + static_cast<std::size_t>(d.position());
      }
    }
    const auto def = enums.find(enum_name);
    if (enum_name.empty() || def == enums.end() || def->second.ambiguous) {
      continue;
    }
    const std::size_t switch_line =
        joined.line_of(static_cast<std::size_t>(it->position()));
    if (default_off) {
      report(findings, f, joined.line_of(*default_off), "CPC-L003",
             "switch over enum " + enum_name +
                 " has a default: — enumerate every case so -Wswitch guards "
                 "new enumerators, or waive with justification");
      continue;
    }
    std::vector<std::string> missing;
    for (const std::string& e : def->second.enumerators) {
      if (!cased.count(e)) missing.push_back(e);
    }
    if (!missing.empty()) {
      std::string list;
      for (const std::string& m : missing) {
        if (!list.empty()) list += ", ";
        list += m;
      }
      report(findings, f, switch_line, "CPC-L003",
             "switch over enum " + enum_name +
                 " does not handle: " + list);
    }
    (void)body_open;
  }
}

// ---------------------------------------------------------------------------
// CPC-L004 — structured diagnostics where Diagnostic exists
// ---------------------------------------------------------------------------

void check_l004(const SourceFile& f, std::vector<Finding>& findings) {
  static const std::regex kStringViolation(R"(InvariantViolation\s*\(\s*")");
  static const std::regex kNakedThrow(
      R"(\bthrow\s+std::(runtime_error|logic_error)\s*\()");
  const bool diagnostic_layer =
      f.category == "src" && (f.src_dir == "cache" || f.src_dir == "core");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kStringViolation)) {
      report(findings, f, i + 1, "CPC-L004",
             "InvariantViolation built from a bare string — construct a "
             "cpc::Diagnostic (invariant, site, addresses, detail) instead");
    }
    if (diagnostic_layer && std::regex_search(f.code[i], kNakedThrow)) {
      report(findings, f, i + 1, "CPC-L004",
             "naked std exception in a layer with structured diagnostics — "
             "throw InvariantViolation with a cpc::Diagnostic");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L005 — header hygiene
// ---------------------------------------------------------------------------

void check_l005(const SourceFile& f, std::vector<Finding>& findings) {
  if (!f.is_header) return;
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  bool seen_code = false;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (!seen_code && !blank(line)) {
      seen_code = true;
      std::istringstream first(line);
      std::string a, b;
      first >> a >> b;
      if (a != "#pragma" || b != "once") {
        report(findings, f, i + 1, "CPC-L005",
               "#pragma once must be the first directive in a header");
      }
    }
    if (std::regex_search(line, kUsingNamespace)) {
      report(findings, f, i + 1, "CPC-L005",
             "using namespace in a header leaks into every includer");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L006 — include layering
// ---------------------------------------------------------------------------

int dir_rank(const std::string& dir) {
  static const std::map<std::string, int> kRanks = {
      {"common", 0}, {"mem", 1},      {"stats", 1},    {"compress", 1},
      {"cache", 2},  {"cpu", 3},      {"core", 3},     {"workload", 4},
      {"analysis", 4}, {"sim", 5},    {"verify", 6},   {"net", 7},
  };
  const auto it = kRanks.find(dir);
  return it == kRanks.end() ? -1 : it->second;
}

void check_l006(const SourceFile& f, std::vector<Finding>& findings) {
  int rank = 100;  // tools/tests/bench/examples may include anything
  if (f.category == "src") {
    rank = dir_rank(f.src_dir);
    if (rank < 0) return;  // unranked src subdirectory
  }
  // Matched against the raw line: the stripper empties string literals,
  // which is exactly where an include path lives.
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"]+)\")");
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.raw[i], m, kInclude)) continue;
    const std::string header = m[1];
    if (header == "verify/fault.hpp") continue;  // documented rank-0 leaf
    const std::size_t slash = header.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const int header_rank = dir_rank(header.substr(0, slash));
    if (header_rank < 0) continue;  // not a ranked project directory
    if (header_rank > rank) {
      report(findings, f, i + 1, "CPC-L006",
             "include of \"" + header + "\" (layer " +
                 std::to_string(header_rank) + ") from " + f.src_dir +
                 "/ (layer " + std::to_string(rank) +
                 ") inverts the dependency order");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L007 — registry / enum sync
// ---------------------------------------------------------------------------

struct RegistryPair {
  const char* header_suffix;  // header holding the enum
  const char* enum_name;
  const char* def_name;  // .def next to the header
  const char* row_macro;
};

constexpr RegistryPair kRegistries[] = {
    {"common/check.hpp", "Invariant", "invariant_registry.def",
     "CPC_INVARIANT_ROW"},
    {"verify/fault.hpp", "FaultKind", "fault_registry.def", "CPC_FAULT_ROW"},
    {"compress/codec.hpp", "CodecKind", "codec_registry.def",
     "CPC_CODEC_ROW"},
};

void check_l007(const SourceFile& f,
                const std::map<std::string, EnumDef>& enums,
                std::vector<Finding>& findings) {
  for (const RegistryPair& reg : kRegistries) {
    if (!ends_with(f.display, reg.header_suffix)) continue;
    const fs::path def_path = f.path.parent_path() / reg.def_name;
    std::ifstream in(def_path);
    if (!in) {
      report(findings, f, 1, "CPC-L007",
             std::string("registry file ") + reg.def_name +
                 " not found next to " + reg.header_suffix);
      continue;
    }
    std::vector<std::string> def_raw;
    std::string line;
    while (std::getline(in, line)) def_raw.push_back(std::move(line));
    const std::vector<std::string> def_code =
        strip_comments_and_strings(def_raw);
    const std::regex row(std::string(reg.row_macro) + R"(\(\s*([A-Za-z_]\w*))");
    std::vector<std::pair<std::string, std::size_t>> rows;  // name, line
    for (std::size_t i = 0; i < def_code.size(); ++i) {
      std::smatch m;
      if (std::regex_search(def_code[i], m, row)) rows.emplace_back(m[1], i + 1);
    }
    const auto def = enums.find(reg.enum_name);
    if (def == enums.end()) continue;  // enum not in the scanned set
    const std::vector<std::string>& want = def->second.enumerators;
    const std::string def_display = def_path.generic_string();
    for (std::size_t i = 0; i < std::max(want.size(), rows.size()); ++i) {
      const std::string have = i < rows.size() ? rows[i].first : "<missing>";
      const std::string need = i < want.size() ? want[i] : "<extra>";
      if (have == need) continue;
      findings.push_back(
          {def_display, i < rows.size() ? rows[i].second : rows.size() + 1,
           "CPC-L007",
           std::string(reg.def_name) + " row " + std::to_string(i) + " is '" +
               have + "' but enum " + reg.enum_name + " declares '" + need +
               "' — registry rows must mirror the enum exactly, in order"});
      break;  // one finding per registry is enough to localise the drift
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L008 — centralized wall-clock timing
// ---------------------------------------------------------------------------

void check_l008(const SourceFile& f, std::vector<Finding>& findings) {
  // Wall-clock measurement funnels through sim::Stopwatch so every reported
  // duration comes from one clock with one set of caveats. The allowlist is
  // the Stopwatch itself, the sweep watchdog's deadline arithmetic, and the
  // mutex shim whose wait_for signature is inherently a chrono duration.
  static const char* const kSanctioned[] = {
      "src/sim/bench_meter.hpp",
      "src/sim/bench_meter.cpp",
      "src/sim/sweep_runner.cpp",
      "src/common/mutex.hpp",
  };
  if (f.category != "src" && f.category != "tools" && f.category != "bench") {
    return;
  }
  for (const char* ok : kSanctioned) {
    if (ends_with(f.display, ok)) return;
  }
  static const std::regex kChronoUse(R"(\bstd\s*::\s*chrono\b)");
  static const std::regex kChronoInclude(R"(#\s*include\s*<chrono>)");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kChronoUse) ||
        std::regex_search(f.code[i], kChronoInclude)) {
      report(findings, f, i + 1, "CPC-L008",
             "direct std::chrono use outside the sanctioned timing sites — "
             "measure through sim::Stopwatch (sim/bench_meter.hpp)");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L009 — centralized process management
// ---------------------------------------------------------------------------

void check_l009(const SourceFile& f, std::vector<Finding>& findings) {
  // fork() in a process with threads, waitpid vs SIGCHLD races, EINTR on
  // pipe writes, RLIMIT_AS under sanitizers: each is solved exactly once,
  // in the ipc layer. Everything else goes through sim::ipc::spawn_worker
  // or the ShardSupervisor, so crash containment has one implementation.
  static const char* const kSanctioned[] = {
      "src/sim/ipc.cpp",
      "src/sim/shard_supervisor.cpp",
  };
  if (f.category != "src" && f.category != "tools" && f.category != "bench") {
    return;
  }
  for (const char* ok : kSanctioned) {
    if (ends_with(f.display, ok)) return;
  }
  // The look-behind class also excludes '.' and '>' so member functions
  // (future.wait(), cv->wait()) don't trip the syscall names. Bare wait()
  // is not matched at all — too many innocent members are named `wait`;
  // the reap syscalls that matter are the waitpid family.
  static const std::regex kProcessCall(
      R"((^|[^:_\w.>])(fork|vfork|waitpid|wait3|wait4|pipe|pipe2|kill|killpg)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kProcessCall)) {
      report(findings, f, i + 1, "CPC-L009",
             "raw process-management call outside the ipc layer — spawn and "
             "supervise through sim::ipc (sim/ipc.hpp) or the "
             "ShardSupervisor (sim/shard_supervisor.hpp)");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L010 — centralized socket management
// ---------------------------------------------------------------------------

void check_l010(const SourceFile& f, std::vector<Finding>& findings) {
  // SIGPIPE on a vanished peer, nonblocking accept semantics, EINTR
  // retries, sun_path length limits: socket pitfalls are handled once in
  // cpc::net (net/socket.hpp). Everything else — the daemon, the client,
  // tests — goes through that wrapper. poll()/ppoll() is additionally
  // sanctioned in sim/ipc.cpp, which predates the net layer and multiplexes
  // shard-worker pipes. (send/recv are deliberately not matched: too many
  // innocent members share those names.)
  if (f.category != "src" && f.category != "tools" && f.category != "bench") {
    return;
  }
  const bool in_socket_impl = ends_with(f.display, "src/net/socket.cpp");
  const bool may_poll =
      in_socket_impl || ends_with(f.display, "src/sim/ipc.cpp");
  // Same look-behind class as CPC-L009: '::'-qualified, member and
  // identifier-suffix uses don't trip the syscall names.
  static const std::regex kSocketCall(
      R"((^|[^:_\w.>])(socket|socketpair|bind|listen|accept|accept4|connect|setsockopt|getsockopt|sendto|recvfrom|sendmsg|recvmsg)\s*\()");
  static const std::regex kPollCall(R"((^|[^:_\w.>])(poll|ppoll)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (!in_socket_impl && std::regex_search(f.code[i], kSocketCall)) {
      report(findings, f, i + 1, "CPC-L010",
             "raw socket call outside the net layer — connect and listen "
             "through cpc::net (net/socket.hpp)");
    }
    if (!may_poll && std::regex_search(f.code[i], kPollCall)) {
      report(findings, f, i + 1, "CPC-L010",
             "raw poll call outside net/socket.cpp and sim/ipc.cpp — "
             "multiplex through net::poll_sockets (net/socket.hpp)");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

bool under_fixtures(const fs::path& p) {
  return p.generic_string().find("lint/fixtures") != std::string::npos;
}

int collect_files(const fs::path& root, std::vector<fs::path>& files) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    files.push_back(root);
    return 0;
  }
  if (!fs::is_directory(root, ec)) {
    std::cerr << "cpc_lint: cannot read " << root << "\n";
    return 2;
  }
  const bool root_in_fixtures = under_fixtures(root);
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::cerr << "cpc_lint: walk error under " << root << ": "
                << ec.message() << "\n";
      return 2;
    }
    const fs::path& p = it->path();
    if (it->is_directory()) {
      const std::string name = p.filename().string();
      if (!name.empty() && name[0] == '.') it.disable_recursion_pending();
      if (name == "build") it.disable_recursion_pending();
      if (!root_in_fixtures && under_fixtures(p)) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (!it->is_regular_file() || !cpp_source(p)) continue;
    if (!root_in_fixtures && under_fixtures(p)) continue;
    files.push_back(p);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: cpc_lint <path>...\n"
                   "Project static analysis; checks CPC-L001..CPC-L010.\n"
                   "Exit: 0 clean, 1 findings, 2 usage/IO error.\n";
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cpc_lint: unknown option " << arg << "\n";
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: cpc_lint <path>...\n";
    return 2;
  }

  std::vector<fs::path> paths;
  for (const fs::path& root : roots) {
    if (const int rc = collect_files(root, paths)) return rc;
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    SourceFile f;
    f.path = p;
    f.display = p.generic_string();
    f.is_header = p.extension() == ".hpp" || p.extension() == ".h" ||
                  p.extension() == ".hh";
    std::ifstream in(p);
    if (!in) {
      std::cerr << "cpc_lint: cannot open " << p << "\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) f.raw.push_back(std::move(line));
    f.code = strip_comments_and_strings(f.raw);
    collect_waivers(f);
    categorise(f);
    files.push_back(std::move(f));
  }

  // Pass 1: enum declarations from every scanned file, so switch checks in
  // one file see enums declared in another.
  std::map<std::string, EnumDef> enums;
  for (const SourceFile& f : files) collect_enums(f, enums);

  // Pass 2: the checks.
  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    check_l001(f, findings);
    check_l002(f, findings);
    check_l003(f, enums, findings);
    check_l004(f, findings);
    check_l005(f, findings);
    check_l006(f, findings);
    check_l007(f, enums, findings);
    check_l008(f, findings);
    check_l009(f, findings);
    check_l010(f, findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.id < b.id;
            });
  for (const Finding& finding : findings) {
    std::cout << finding.file << ":" << finding.line << ": " << finding.id
              << ": " << finding.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "cpc_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
