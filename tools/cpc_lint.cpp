// cpc_lint — project static analysis driver.
//
// The checks live in the lint library (tools/lint/): a comment/string-aware
// lexer feeds a token engine (checks CPC-L001..L014) and, behind
// `--engine legacy`, the original regex engine (CPC-L001..L010 only) kept
// as the reference for the zero-diff port proof (tests/lint/zero_diff.sh).

#include <algorithm>
#include <chrono>  // cpc-lint: allow(CPC-L008) — reports lint wall time
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "lint/checks.hpp"
#include "lint/legacy.hpp"
#include "lint/registry.hpp"
#include "lint/source.hpp"

namespace fs = std::filesystem;

namespace {

int list_checks() {
  const cpc::lint::CheckInfo* table = cpc::lint::check_table();
  for (std::size_t i = 0; i < cpc::lint::kCheckCount; ++i) {
    const cpc::lint::CheckInfo& info = table[i];
    // Checks at or above kL011 need the token-level indexes and are not
    // implemented by the legacy reference engine.
    const bool both = info.check < cpc::lint::CheckId::kL011;
    std::cout << info.id << "  " << (both ? "token+legacy" : "token-only ")
              << "  " << info.title << "\n";
  }
  return 0;
}

int explain_check(std::string_view id) {
  const cpc::lint::CheckInfo* info = cpc::lint::find_check(id);
  if (info == nullptr) {
    std::cerr << "cpc_lint: unknown check '" << id
              << "' — see cpc_lint --list\n";
    return 2;
  }
  std::cout << info->id << ": " << info->title << "\n\n" << info->doc << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine = "token";
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: cpc_lint [--engine token|legacy] <path>...\n"
             "       cpc_lint --list | --explain CPC-L0NN\n"
             "Project static analysis; checks CPC-L001..CPC-L014.\n"
             "  --engine legacy   reference regex engine (CPC-L001..L010\n"
             "                    only; the zero-diff baseline)\n"
             "  --list            one line per check: ID, engines, title\n"
             "  --explain ID      print a check's documentation\n"
             "Exit: 0 clean, 1 findings, 2 usage/IO error.\n";
      return 0;
    }
    if (arg == "--list") return list_checks();
    if (arg == "--explain") {
      if (i + 1 >= argc) {
        std::cerr << "cpc_lint: --explain needs a check ID\n";
        return 2;
      }
      return explain_check(argv[i + 1]);
    }
    if (arg == "--engine") {
      if (i + 1 >= argc) {
        std::cerr << "cpc_lint: --engine needs 'token' or 'legacy'\n";
        return 2;
      }
      engine = argv[++i];
      if (engine != "token" && engine != "legacy") {
        std::cerr << "cpc_lint: unknown engine '" << engine << "'\n";
        return 2;
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cpc_lint: unknown option " << arg << "\n";
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: cpc_lint [--engine token|legacy] <path>...\n";
    return 2;
  }

  // cpc-lint: allow(CPC-L008) — single-pass wall time printed to stderr
  const auto started = std::chrono::steady_clock::now();

  std::vector<fs::path> paths;
  for (const fs::path& root : roots) {
    if (const int rc = cpc::lint::collect_files(root, paths)) return rc;
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<cpc::lint::SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    cpc::lint::SourceFile f;
    if (!cpc::lint::load_file(p, f)) return 2;
    files.push_back(std::move(f));
  }

  std::vector<cpc::lint::Finding> findings =
      engine == "legacy" ? cpc::lint::run_legacy_checks(files)
                         : cpc::lint::run_token_checks(files);
  cpc::lint::sort_findings(findings);

  for (const cpc::lint::Finding& finding : findings) {
    std::cout << finding.file << ":" << finding.line << ": " << finding.id
              << ": " << finding.message << "\n";
  }

  // cpc-lint: allow(CPC-L008) — see above; stdout stays format-stable
  const auto ended = std::chrono::steady_clock::now();
  // cpc-lint: allow(CPC-L008)
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           ended - started)
                           .count();
  std::cerr << "cpc_lint: " << files.size() << " file(s), " << findings.size()
            << " finding(s), " << elapsed << " ms [" << engine << "]\n";
  return findings.empty() ? 0 : 1;
}
