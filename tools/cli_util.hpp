#pragma once
// Shared CLI conventions for the cpc_* tools.
//
// Exit codes (checked by tests/cli/test_exit_codes.sh):
//   0 — success
//   1 — unexpected internal error
//   2 — usage error (bad flags/arguments)
//   3 — bad input (unreadable/corrupt trace, unknown workload or config)
//   4 — invariant violation (cache structural corruption detected)
//
// Tools wrap their logic in guarded_main(), which maps exception types to
// these codes and prints one actionable line to stderr.

#include <exception>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>

#include "common/check.hpp"
#include "cpu/trace_io.hpp"

namespace cpc::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitBadInput = 3;
inline constexpr int kExitInvariant = 4;

/// Thrown by tools for user-supplied input that does not make sense
/// (unknown workload name, unknown configuration, malformed value).
class BadInput : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Runs `body` and maps exceptions to the exit-code contract above. `body`
/// returns the exit code for the non-throwing paths (0, or kExitUsage).
inline int guarded_main(const std::function<int()>& body) {
  try {
    return body();
  } catch (const InvariantViolation& violation) {
    std::cerr << "error: " << violation.what()
              << " (cache state is corrupt; rerun with CPC_AUDIT_STRIDE=1 to "
                 "localise the first bad access)\n";
    return kExitInvariant;
  } catch (const cpu::TraceIoError& error) {
    std::cerr << "error: " << error.what()
              << " (is this a .cpctrace file written by cpc_tracegen?)\n";
    return kExitBadInput;
  } catch (const BadInput& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitBadInput;
  } catch (const std::out_of_range& error) {
    // workload::find_workload throws out_of_range for unknown names.
    std::cerr << "error: " << error.what()
              << " (run cpc_tracegen with no arguments to list workloads)\n";
    return kExitBadInput;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitError;
  }
}

}  // namespace cpc::cli
