#include "lint/index.hpp"

#include <regex>

namespace cpc::lint {
namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

bool control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "new" || s == "delete" ||
         s == "sizeof" || s == "alignof" || s == "decltype" ||
         s == "static_assert" || s == "noexcept" || s == "operator" ||
         s == "throw" || s == "co_return" || s == "co_await";
}

bool scope_keyword(const std::string& s) {
  return s == "namespace" || s == "class" || s == "struct" || s == "union" ||
         s == "enum";
}

/// Finds the token index of the matching close for the open bracket at
/// `open` (parens only — braces inside lambda arguments keep parens
/// balanced). Returns ts.size() if unbalanced.
std::size_t match_paren(const std::vector<Token>& ts, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < ts.size(); ++i) {
    if (is_punct(ts[i], "(")) ++depth;
    if (is_punct(ts[i], ")")) {
      if (--depth == 0) return i;
    }
  }
  return ts.size();
}

/// Walks back from the token before `open_paren` over an `ident` /
/// `::` / `~` chain; returns the chain components in source order
/// (empty if the preceding token is not an identifier).
std::vector<std::string> name_chain_before(const std::vector<Token>& ts,
                                           std::size_t open_paren) {
  std::vector<std::string> rev;
  std::size_t j = open_paren;
  bool expect_ident = true;
  while (j > 0) {
    const Token& t = ts[j - 1];
    if (expect_ident) {
      if (is_punct(t, "~") && !rev.empty()) {
        rev.back() = "~" + rev.back();
        --j;
        continue;
      }
      if (!is_ident(t)) break;
      rev.push_back(t.text);
      expect_ident = false;
      --j;
      continue;
    }
    if (is_punct(t, "::")) {
      expect_ident = true;
      --j;
      continue;
    }
    break;
  }
  return {rev.rbegin(), rev.rend()};
}

std::string join_chain(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& c : chain) {
    if (!out.empty()) out += "::";
    out += c;
  }
  return out;
}

/// Normalises a MutexLock constructor argument into a mutex identity:
/// strips a `this->` prefix, and qualifies a bare member name with the
/// enclosing class so `mutex_` in TraceCache methods and `mutex_` in
/// SweepJournal methods stay distinct.
std::string mutex_identity(const std::vector<Token>& expr,
                           const std::string& class_name) {
  std::size_t start = 0;
  if (expr.size() >= 2 && is_ident(expr[0]) && expr[0].text == "this" &&
      is_punct(expr[1], "->")) {
    start = 2;
  }
  while (start < expr.size() &&
         (is_punct(expr[start], "&") || is_punct(expr[start], "*"))) {
    ++start;
  }
  if (start + 1 == expr.size() && is_ident(expr[start])) {
    const std::string& name = expr[start].text;
    return class_name.empty() ? name : class_name + "::" + name;
  }
  std::string out;
  for (std::size_t i = start; i < expr.size(); ++i) {
    out += expr[i].text;
  }
  return out;
}

struct Scope {
  enum Kind { kContainer, kFunction, kOther };
  Kind kind = kOther;
  std::string class_name;     // for containers opened by class/struct/union
  std::size_t fn = SIZE_MAX;  // functions: index into out.functions
};

/// Extracts the declared name from a class/struct/union head, skipping
/// attribute-macro calls (`struct CPC_CAPABILITY("x") Mutex`).
std::string class_head_name(const std::vector<Token>& head,
                            std::size_t keyword_pos) {
  for (std::size_t i = keyword_pos + 1; i < head.size(); ++i) {
    if (is_punct(head[i], ":")) break;  // base clause
    if (!is_ident(head[i])) continue;
    if (head[i].text == "final" || head[i].text == "alignas") continue;
    if (i + 1 < head.size() && is_punct(head[i + 1], "(")) {
      // Attribute macro: skip its argument list.
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < head.size(); ++j) {
        if (is_punct(head[j], "(")) ++depth;
        if (is_punct(head[j], ")") && --depth == 0) break;
      }
      i = j;
      continue;
    }
    return head[i].text;
  }
  return {};
}

}  // namespace

IncludeGraph build_include_graph(const std::vector<SourceFile>& files) {
  IncludeGraph graph;
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"]+)\")");
  for (const SourceFile& f : files) {
    std::vector<IncludeEdge>& edges = graph.edges[f.display];
    for (std::size_t i = 0; i < f.raw.size(); ++i) {
      std::smatch m;
      if (std::regex_search(f.raw[i], m, kInclude)) {
        edges.push_back({i + 1, m[1]});
      }
    }
  }
  return graph;
}

FunctionIndex build_function_index(
    const std::vector<SourceFile>& files,
    const std::vector<std::vector<Token>>& tokens) {
  FunctionIndex out;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    // Structural stream: preprocessor-directive tokens (macro bodies)
    // carry no scope structure and are skipped wholesale.
    std::vector<Token> ts;
    ts.reserve(tokens[fi].size());
    for (const Token& t : tokens[fi]) {
      if (!t.pp) ts.push_back(t);
    }

    std::vector<Scope> stack;
    std::vector<std::size_t> head;  // token indexes since last ; { }
    std::size_t current_fn = SIZE_MAX;
    // Open MutexLock scopes: (lock index in current fn, stack depth).
    std::vector<std::pair<std::size_t, std::size_t>> open_locks;
    std::size_t thread_zone_end = 0;  // tokens < this are std::thread args

    auto nearest_class = [&]() -> std::string {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->kind == Scope::kContainer && !it->class_name.empty()) {
          return it->class_name;
        }
      }
      return {};
    };

    for (std::size_t t = 0; t < ts.size(); ++t) {
      const Token& tok = ts[t];
      if (current_fn != SIZE_MAX && is_ident(tok)) {
        FunctionDef& fn = out.functions[current_fn];
        // std::thread constructor arguments run on another thread; their
        // call extents are excluded from poll-loop reachability.
        if ((tok.text == "thread" || tok.text == "jthread") &&
            t >= thread_zone_end) {
          std::size_t open = t + 1;
          if (open < ts.size() && is_ident(ts[open])) ++open;  // variable name
          if (open < ts.size() && is_punct(ts[open], "(")) {
            const std::size_t close = match_paren(ts, open);
            if (close > thread_zone_end) thread_zone_end = close;
          }
        } else if (tok.text == "MutexLock" && t + 2 < ts.size() &&
                   is_ident(ts[t + 1]) && is_punct(ts[t + 2], "(")) {
          const std::size_t close = match_paren(ts, t + 2);
          std::vector<Token> expr(ts.begin() + static_cast<long>(t) + 3,
                                  ts.begin() + static_cast<long>(
                                                   close < ts.size() ? close
                                                                     : t + 3));
          LockSite lock;
          lock.mutex = mutex_identity(expr, fn.class_name);
          lock.line = tok.line;
          lock.tok = t;
          lock.scope_end = SIZE_MAX;  // finalised when the scope closes
          fn.locks.push_back(lock);
          open_locks.emplace_back(fn.locks.size() - 1, stack.size());
        } else if (t + 1 < ts.size() && is_punct(ts[t + 1], "(") &&
                   !control_keyword(tok.text) && tok.text != "MutexLock") {
          CallSite call;
          call.name = tok.text;
          std::vector<std::string> chain = name_chain_before(ts, t + 1);
          call.qualified = chain.empty() ? tok.text : join_chain(chain);
          call.line = tok.line;
          call.tok = t;
          call.in_thread_ctor = t < thread_zone_end;
          fn.calls.push_back(call);
        }
      }

      if (is_punct(tok, "{")) {
        Scope scope;
        if (current_fn != SIZE_MAX) {
          scope.kind = Scope::kOther;  // control block / lambda / init
        } else {
          // Classify the head accumulated since the last ; { }.
          std::size_t kw = SIZE_MAX;
          for (std::size_t h = 0; h < head.size(); ++h) {
            if (is_ident(ts[head[h]]) && scope_keyword(ts[head[h]].text)) {
              kw = h;
              break;
            }
          }
          bool top_level_assign = false;
          int pd = 0;
          for (std::size_t h : head) {
            if (is_punct(ts[h], "(")) ++pd;
            if (is_punct(ts[h], ")")) --pd;
            if (pd == 0 && is_punct(ts[h], "=")) top_level_assign = true;
          }
          if (kw != SIZE_MAX) {
            scope.kind = Scope::kContainer;
            std::vector<Token> head_toks;
            for (std::size_t h : head) head_toks.push_back(ts[h]);
            if (ts[head[kw]].text != "namespace" &&
                ts[head[kw]].text != "enum") {
              scope.class_name = class_head_name(head_toks, kw);
            }
          } else if (top_level_assign || head.empty() ||
                     is_punct(ts[head.front()], ",")) {
            scope.kind = Scope::kOther;
          } else {
            // Function definition head: name chain before the first
            // top-level '('.
            std::size_t open = SIZE_MAX;
            pd = 0;
            for (std::size_t h : head) {
              if (is_punct(ts[h], "(")) {
                if (pd == 0) {
                  open = h;
                  break;
                }
                ++pd;
              }
              if (is_punct(ts[h], ")")) --pd;
            }
            std::vector<std::string> chain;
            if (open != SIZE_MAX) chain = name_chain_before(ts, open);
            if (chain.empty() || control_keyword(chain.back())) {
              scope.kind = Scope::kOther;
            } else {
              scope.kind = Scope::kFunction;
              FunctionDef fn;
              fn.name = chain.back();
              fn.qualified = join_chain(chain);
              fn.class_name =
                  chain.size() >= 2 ? chain[chain.size() - 2] : nearest_class();
              fn.file = &files[fi];
              fn.line = ts[open == 0 ? 0 : open - 1].line;
              out.functions.push_back(std::move(fn));
              scope.fn = out.functions.size() - 1;
              current_fn = scope.fn;
            }
          }
        }
        stack.push_back(scope);
        head.clear();
      } else if (is_punct(tok, "}")) {
        if (!stack.empty()) {
          const Scope closed = stack.back();
          stack.pop_back();
          // Close RAII lock scopes opened at or below the popped depth.
          while (!open_locks.empty() &&
                 open_locks.back().second > stack.size()) {
            if (current_fn != SIZE_MAX) {
              out.functions[current_fn]
                  .locks[open_locks.back().first]
                  .scope_end = t;
            }
            open_locks.pop_back();
          }
          if (closed.kind == Scope::kFunction) {
            current_fn = SIZE_MAX;
            open_locks.clear();
          }
        }
        head.clear();
      } else if (is_punct(tok, ";")) {
        head.clear();
      } else if (current_fn == SIZE_MAX) {
        head.push_back(t);
      }
    }
    // Unterminated scopes at EOF: finalise any locks still open.
    if (current_fn != SIZE_MAX) {
      for (LockSite& lock : out.functions[current_fn].locks) {
        if (lock.scope_end == SIZE_MAX) lock.scope_end = ts.size();
      }
    }
  }

  for (std::size_t i = 0; i < out.functions.size(); ++i) {
    out.by_name[out.functions[i].name].push_back(i);
  }
  return out;
}

}  // namespace cpc::lint
