#include "lint/legacy.hpp"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

namespace cpc::lint {
namespace {

struct EnumDef {
  std::string file;
  std::size_t line = 0;
  std::vector<std::string> enumerators;
  bool ambiguous = false;  // same name defined differently in two files
};

// ---------------------------------------------------------------------------
// Source preparation (the original stripper, byte-for-byte)
// ---------------------------------------------------------------------------

/// Strips //- and /**/-comments and the contents of string/char literals so
/// downstream regexes never match inside either. Literal delimiters are kept
/// (an empty "" remains) so token shapes stay recognisable.
std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        code += quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          ++i;
        }
        code += quote;  // unterminated literals just end with the line
        continue;
      }
      code += c;
    }
    out.push_back(std::move(code));
  }
  return out;
}

// ---------------------------------------------------------------------------
// CPC-L001 — entropy / wall-clock ban
// ---------------------------------------------------------------------------

void check_l001(const Prepared& f, std::vector<Finding>& findings) {
  if (ends_with(f.file->display, "workload/rng.hpp")) return;
  struct Ban {
    std::regex pattern;
    const char* what;
  };
  static const std::vector<Ban> kBans = {
      {std::regex(R"(\brand\s*\()"), "rand() — use a seeded workload RNG"},
      {std::regex(R"(\bsrand\s*\()"), "srand() — use a seeded workload RNG"},
      {std::regex(R"(\brandom_device\b)"),
       "std::random_device — nondeterministic entropy"},
      {std::regex(R"(\btime\s*\()"), "time() — wall clock"},
      {std::regex(R"(\bclock\s*\()"), "clock() — wall clock"},
      {std::regex(R"(\blocaltime\b)"), "localtime — wall clock"},
      {std::regex(R"(\bgmtime\b)"), "gmtime — wall clock"},
      {std::regex(R"(\bsystem_clock\b)"), "system_clock — wall clock"},
      {std::regex(R"(\bhigh_resolution_clock\b)"),
       "high_resolution_clock — may alias system_clock"},
  };
  static const std::regex kSteady(R"(\bsteady_clock\b)");
  const bool steady_banned =
      f.file->category == "src" && f.file->src_dir != "sim";
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const Ban& ban : kBans) {
      if (std::regex_search(f.code[i], ban.pattern)) {
        report(findings, f, i + 1, "CPC-L001",
               std::string("banned entropy/wall-clock source: ") + ban.what);
      }
    }
    if (steady_banned && std::regex_search(f.code[i], kSteady)) {
      report(findings, f, i + 1, "CPC-L001",
             "steady_clock outside src/sim/ — simulated time is the only "
             "clock the model may read");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L002 — unordered-container iteration
// ---------------------------------------------------------------------------

void check_l002(const Prepared& f, std::vector<Finding>& findings) {
  static const std::regex kDecl(
      R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  std::set<std::string> names;
  for (const std::string& line : f.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
      int depth = 1;
      while (pos < line.size() && depth > 0) {
        if (line[pos] == '<') ++depth;
        if (line[pos] == '>') --depth;
        ++pos;
      }
      static const std::regex kName(R"(^\s*([A-Za-z_]\w*))");
      std::smatch m;
      const std::string tail = line.substr(pos);
      if (std::regex_search(tail, m, kName)) {
        const std::string name = m[1];
        if (name != "iterator" && name != "const_iterator") names.insert(name);
      }
    }
  }
  if (names.empty()) return;
  for (const std::string& name : names) {
    const std::regex range_for(R"(for\s*\([^;{}]*:\s*(?:this->)?)" + name +
                               R"(\s*\))");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (std::regex_search(f.code[i], range_for) ||
          std::regex_search(
              f.code[i],
              std::regex("\\b" + name + R"(\s*\.\s*c?begin\s*\()"))) {
        report(findings, f, i + 1, "CPC-L002",
               "iteration over unordered container '" + name +
                   "' — order is implementation-defined; waive only with a "
                   "commutativity argument");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L003 — exhaustive enum switches
// ---------------------------------------------------------------------------

/// Joined view of the stripped file, with a char-offset → line mapping.
struct JoinedCode {
  std::string text;
  std::vector<std::size_t> line_start;  // offset of each line in `text`

  explicit JoinedCode(const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
      line_start.push_back(text.size());
      text += line;
      text += '\n';
    }
  }
  std::size_t line_of(std::size_t offset) const {  // 1-based
    const auto it =
        std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

void collect_enums(const Prepared& f, std::map<std::string, EnumDef>& enums) {
  const JoinedCode joined(f.code);
  static const std::regex kEnum(R"(\benum\s+class\s+([A-Za-z_]\w*)[^{;]*\{)");
  for (std::sregex_iterator it(joined.text.begin(), joined.text.end(), kEnum),
       end;
       it != end; ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    const std::size_t close = joined.text.find('}', open);
    if (close == std::string::npos) continue;
    EnumDef def;
    def.file = f.file->display;
    def.line = joined.line_of(static_cast<std::size_t>(it->position()));
    std::istringstream body(joined.text.substr(open + 1, close - open - 1));
    std::string item;
    while (std::getline(body, item, ',')) {
      std::istringstream words(item);
      std::string name;
      if (words >> name) {
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) name = name.substr(0, eq);
        if (!name.empty()) def.enumerators.push_back(name);
      }
    }
    if (def.enumerators.empty()) continue;
    const std::string enum_name = (*it)[1];
    auto [existing, inserted] = enums.emplace(enum_name, def);
    if (!inserted && existing->second.enumerators != def.enumerators) {
      existing->second.ambiguous = true;  // two unrelated enums share a name
    }
  }
}

void check_l003(const Prepared& f, const std::map<std::string, EnumDef>& enums,
                std::vector<Finding>& findings) {
  const JoinedCode joined(f.code);
  const std::string& text = joined.text;
  static const std::regex kSwitch(R"(\bswitch\s*\()");
  // The label must end on a word char: with a bare `[\w:]+` a label whose
  // next statement begins with `::` (e.g. `::_Exit(3);`) greedily matches
  // `Enum::kValue:` as the capture and the statement's colon as the
  // terminator, mangling the enumerator name.
  static const std::regex kCase(R"(\bcase\s+([\w:]*\w)\s*:)");
  static const std::regex kDefault(R"(\bdefault\s*:)");
  for (std::sregex_iterator it(text.begin(), text.end(), kSwitch), end;
       it != end; ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int paren = 1;
    while (pos < text.size() && paren > 0) {
      if (text[pos] == '(') ++paren;
      if (text[pos] == ')') --paren;
      ++pos;
    }
    while (pos < text.size() && text[pos] != '{') ++pos;
    if (pos >= text.size()) continue;
    const std::size_t body_open = pos++;
    int depth = 1;
    std::vector<std::pair<std::size_t, std::size_t>> depth1;  // [from,to)
    std::size_t segment = pos;
    while (pos < text.size() && depth > 0) {
      if (text[pos] == '{') {
        if (depth == 1) depth1.emplace_back(segment, pos);
        ++depth;
      } else if (text[pos] == '}') {
        --depth;
        if (depth == 1) segment = pos + 1;
      }
      ++pos;
    }
    if (depth == 0 && segment < pos - 1) depth1.emplace_back(segment, pos - 1);

    std::set<std::string> cased;
    std::string enum_name;
    std::optional<std::size_t> default_off;
    for (const auto& [from, to] : depth1) {
      const std::string seg = text.substr(from, to - from);
      for (std::sregex_iterator c(seg.begin(), seg.end(), kCase), cend;
           c != cend; ++c) {
        const std::string label = (*c)[1];
        const std::size_t last = label.rfind("::");
        if (last == std::string::npos) continue;  // int switch — not ours
        cased.insert(label.substr(last + 2));
        std::string qualifier = label.substr(0, last);
        const std::size_t prev = qualifier.rfind("::");
        if (prev != std::string::npos) qualifier = qualifier.substr(prev + 2);
        enum_name = qualifier;
      }
      std::smatch d;
      if (!default_off && std::regex_search(seg, d, kDefault)) {
        default_off = from + static_cast<std::size_t>(d.position());
      }
    }
    const auto def = enums.find(enum_name);
    if (enum_name.empty() || def == enums.end() || def->second.ambiguous) {
      continue;
    }
    const std::size_t switch_line =
        joined.line_of(static_cast<std::size_t>(it->position()));
    if (default_off) {
      report(findings, f, joined.line_of(*default_off), "CPC-L003",
             "switch over enum " + enum_name +
                 " has a default: — enumerate every case so -Wswitch guards "
                 "new enumerators, or waive with justification");
      continue;
    }
    std::vector<std::string> missing;
    for (const std::string& e : def->second.enumerators) {
      if (!cased.count(e)) missing.push_back(e);
    }
    if (!missing.empty()) {
      std::string list;
      for (const std::string& m : missing) {
        if (!list.empty()) list += ", ";
        list += m;
      }
      report(findings, f, switch_line, "CPC-L003",
             "switch over enum " + enum_name + " does not handle: " + list);
    }
    (void)body_open;
  }
}

// ---------------------------------------------------------------------------
// CPC-L004 — structured diagnostics where Diagnostic exists
// ---------------------------------------------------------------------------

void check_l004(const Prepared& f, std::vector<Finding>& findings) {
  static const std::regex kStringViolation(R"(InvariantViolation\s*\(\s*")");
  static const std::regex kNakedThrow(
      R"(\bthrow\s+std::(runtime_error|logic_error)\s*\()");
  const bool diagnostic_layer =
      f.file->category == "src" &&
      (f.file->src_dir == "cache" || f.file->src_dir == "core");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kStringViolation)) {
      report(findings, f, i + 1, "CPC-L004",
             "InvariantViolation built from a bare string — construct a "
             "cpc::Diagnostic (invariant, site, addresses, detail) instead");
    }
    if (diagnostic_layer && std::regex_search(f.code[i], kNakedThrow)) {
      report(findings, f, i + 1, "CPC-L004",
             "naked std exception in a layer with structured diagnostics — "
             "throw InvariantViolation with a cpc::Diagnostic");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L005 — header hygiene
// ---------------------------------------------------------------------------

void check_l005(const Prepared& f, std::vector<Finding>& findings) {
  if (!f.file->is_header) return;
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  bool seen_code = false;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (!seen_code && !blank(line)) {
      seen_code = true;
      std::istringstream first(line);
      std::string a, b;
      first >> a >> b;
      if (a != "#pragma" || b != "once") {
        report(findings, f, i + 1, "CPC-L005",
               "#pragma once must be the first directive in a header");
      }
    }
    if (std::regex_search(line, kUsingNamespace)) {
      report(findings, f, i + 1, "CPC-L005",
             "using namespace in a header leaks into every includer");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L006 — include layering
// ---------------------------------------------------------------------------

int dir_rank(const std::string& dir) {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},   {"mem", 1},  {"stats", 1},  {"compress", 1},
      {"cache", 2},    {"cpu", 3},  {"core", 3},   {"workload", 4},
      {"analysis", 4}, {"sim", 5},  {"verify", 6}, {"net", 7},
  };
  const auto it = kRanks.find(dir);
  return it == kRanks.end() ? -1 : it->second;
}

void check_l006(const Prepared& f, std::vector<Finding>& findings) {
  int rank = 100;  // tools/tests/bench/examples may include anything
  if (f.file->category == "src") {
    rank = dir_rank(f.file->src_dir);
    if (rank < 0) return;  // unranked src subdirectory
  }
  // Matched against the raw line: the stripper empties string literals,
  // which is exactly where an include path lives.
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"]+)\")");
  for (std::size_t i = 0; i < f.file->raw.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.file->raw[i], m, kInclude)) continue;
    const std::string header = m[1];
    if (header == "verify/fault.hpp") continue;  // documented rank-0 leaf
    const std::size_t slash = header.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const int header_rank = dir_rank(header.substr(0, slash));
    if (header_rank < 0) continue;  // not a ranked project directory
    if (header_rank > rank) {
      report(findings, f, i + 1, "CPC-L006",
             "include of \"" + header + "\" (layer " +
                 std::to_string(header_rank) + ") from " + f.file->src_dir +
                 "/ (layer " + std::to_string(rank) +
                 ") inverts the dependency order");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L007 — registry / enum sync
// ---------------------------------------------------------------------------

struct RegistryPair {
  const char* header_suffix;  // header holding the enum
  const char* enum_name;
  const char* def_name;  // .def next to the header
  const char* row_macro;
};

constexpr RegistryPair kRegistries[] = {
    {"common/check.hpp", "Invariant", "invariant_registry.def",
     "CPC_INVARIANT_ROW"},
    {"verify/fault.hpp", "FaultKind", "fault_registry.def", "CPC_FAULT_ROW"},
    {"compress/codec.hpp", "CodecKind", "codec_registry.def",
     "CPC_CODEC_ROW"},
    {"lint/registry.hpp", "CheckId", "lint_registry.def", "CPC_LINT_ROW"},
};

void check_l007(const Prepared& f, const std::map<std::string, EnumDef>& enums,
                std::vector<Finding>& findings) {
  for (const RegistryPair& reg : kRegistries) {
    if (!ends_with(f.file->display, reg.header_suffix)) continue;
    const fs::path def_path = f.file->path.parent_path() / reg.def_name;
    std::ifstream in(def_path);
    if (!in) {
      report(findings, f, 1, "CPC-L007",
             std::string("registry file ") + reg.def_name +
                 " not found next to " + reg.header_suffix);
      continue;
    }
    std::vector<std::string> def_raw;
    std::string line;
    while (std::getline(in, line)) def_raw.push_back(std::move(line));
    const std::vector<std::string> def_code =
        strip_comments_and_strings(def_raw);
    const std::regex row(std::string(reg.row_macro) + R"(\(\s*([A-Za-z_]\w*))");
    std::vector<std::pair<std::string, std::size_t>> rows;  // name, line
    for (std::size_t i = 0; i < def_code.size(); ++i) {
      std::smatch m;
      if (std::regex_search(def_code[i], m, row)) rows.emplace_back(m[1], i + 1);
    }
    const auto def = enums.find(reg.enum_name);
    if (def == enums.end()) continue;  // enum not in the scanned set
    const std::vector<std::string>& want = def->second.enumerators;
    const std::string def_display = def_path.generic_string();
    for (std::size_t i = 0; i < std::max(want.size(), rows.size()); ++i) {
      const std::string have = i < rows.size() ? rows[i].first : "<missing>";
      const std::string need = i < want.size() ? want[i] : "<extra>";
      if (have == need) continue;
      findings.push_back(
          {def_display, i < rows.size() ? rows[i].second : rows.size() + 1,
           "CPC-L007",
           std::string(reg.def_name) + " row " + std::to_string(i) + " is '" +
               have + "' but enum " + reg.enum_name + " declares '" + need +
               "' — registry rows must mirror the enum exactly, in order"});
      break;  // one finding per registry is enough to localise the drift
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L008 — centralized wall-clock timing
// ---------------------------------------------------------------------------

void check_l008(const Prepared& f, std::vector<Finding>& findings) {
  static const char* const kSanctioned[] = {
      "src/sim/bench_meter.hpp",
      "src/sim/bench_meter.cpp",
      "src/sim/sweep_runner.cpp",
      "src/common/mutex.hpp",
  };
  const std::string& category = f.file->category;
  if (category != "src" && category != "tools" && category != "bench") {
    return;
  }
  for (const char* ok : kSanctioned) {
    if (ends_with(f.file->display, ok)) return;
  }
  static const std::regex kChronoUse(R"(\bstd\s*::\s*chrono\b)");
  static const std::regex kChronoInclude(R"(#\s*include\s*<chrono>)");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kChronoUse) ||
        std::regex_search(f.code[i], kChronoInclude)) {
      report(findings, f, i + 1, "CPC-L008",
             "direct std::chrono use outside the sanctioned timing sites — "
             "measure through sim::Stopwatch (sim/bench_meter.hpp)");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L009 — centralized process management
// ---------------------------------------------------------------------------

void check_l009(const Prepared& f, std::vector<Finding>& findings) {
  static const char* const kSanctioned[] = {
      "src/sim/ipc.cpp",
      "src/sim/shard_supervisor.cpp",
  };
  const std::string& category = f.file->category;
  if (category != "src" && category != "tools" && category != "bench") {
    return;
  }
  for (const char* ok : kSanctioned) {
    if (ends_with(f.file->display, ok)) return;
  }
  static const std::regex kProcessCall(
      R"((^|[^:_\w.>])(fork|vfork|waitpid|wait3|wait4|pipe|pipe2|kill|killpg)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kProcessCall)) {
      report(findings, f, i + 1, "CPC-L009",
             "raw process-management call outside the ipc layer — spawn and "
             "supervise through sim::ipc (sim/ipc.hpp) or the "
             "ShardSupervisor (sim/shard_supervisor.hpp)");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L010 — centralized socket management
// ---------------------------------------------------------------------------

void check_l010(const Prepared& f, std::vector<Finding>& findings) {
  const std::string& category = f.file->category;
  if (category != "src" && category != "tools" && category != "bench") {
    return;
  }
  const bool in_socket_impl = ends_with(f.file->display, "src/net/socket.cpp");
  const bool may_poll =
      in_socket_impl || ends_with(f.file->display, "src/sim/ipc.cpp");
  static const std::regex kSocketCall(
      R"((^|[^:_\w.>])(socket|socketpair|bind|listen|accept|accept4|connect|setsockopt|getsockopt|sendto|recvfrom|sendmsg|recvmsg)\s*\()");
  static const std::regex kPollCall(R"((^|[^:_\w.>])(poll|ppoll)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (!in_socket_impl && std::regex_search(f.code[i], kSocketCall)) {
      report(findings, f, i + 1, "CPC-L010",
             "raw socket call outside the net layer — connect and listen "
             "through cpc::net (net/socket.hpp)");
    }
    if (!may_poll && std::regex_search(f.code[i], kPollCall)) {
      report(findings, f, i + 1, "CPC-L010",
             "raw poll call outside net/socket.cpp and sim/ipc.cpp — "
             "multiplex through net::poll_sockets (net/socket.hpp)");
    }
  }
}

}  // namespace

std::vector<Finding> run_legacy_checks(const std::vector<SourceFile>& files) {
  std::vector<Prepared> prepared;
  prepared.reserve(files.size());
  for (const SourceFile& f : files) {
    Prepared p;
    p.file = &f;
    p.code = strip_comments_and_strings(f.raw);
    p.waivers = collect_waivers(f.raw, p.code);
    prepared.push_back(std::move(p));
  }

  // Pass 1: enum declarations from every scanned file, so switch checks in
  // one file see enums declared in another.
  std::map<std::string, EnumDef> enums;
  for (const Prepared& f : prepared) collect_enums(f, enums);

  // Pass 2: the checks.
  std::vector<Finding> findings;
  for (const Prepared& f : prepared) {
    check_l001(f, findings);
    check_l002(f, findings);
    check_l003(f, enums, findings);
    check_l004(f, findings);
    check_l005(f, findings);
    check_l006(f, findings);
    check_l007(f, enums, findings);
    check_l008(f, findings);
    check_l009(f, findings);
    check_l010(f, findings);
  }
  return findings;
}

}  // namespace cpc::lint
