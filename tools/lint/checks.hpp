#pragma once
// The token engine: checks CPC-L001..L010 ported onto the shared lexer
// pass (zero-diff against lint/legacy.cpp, proven by
// tests/lint/zero_diff.sh) plus the flow-aware checks CPC-L011..L014
// built on the function/call/lock index.

#include <vector>

#include "lint/source.hpp"

namespace cpc::lint {

/// Runs every enabled check over the file set. One lexer pass per file
/// feeds the stripped view, the token stream and the structural indexes.
std::vector<Finding> run_token_checks(const std::vector<SourceFile>& files);

}  // namespace cpc::lint
