#include "lint/checks.hpp"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "lint/index.hpp"
#include "lint/lexer.hpp"

namespace fs = std::filesystem;

namespace cpc::lint {
namespace {

struct EnumDef {
  std::string file;
  std::size_t line = 0;
  std::vector<std::string> enumerators;
  bool ambiguous = false;
};

/// A file under the token engine: the shared Prepared view plus the token
/// stream the structural checks consume. One lexer pass fills all of it.
struct TokenFile {
  Prepared prep;
  std::vector<Token> tokens;
};

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

bool flow_checked_category(const SourceFile& f) {
  return f.category == "src" || f.category == "tools" ||
         f.category == "bench";
}

// ---------------------------------------------------------------------------
// CPC-L001 — entropy / wall-clock ban (token port)
// ---------------------------------------------------------------------------

void check_l001(const TokenFile& tf, std::vector<Finding>& findings) {
  const Prepared& f = tf.prep;
  if (ends_with(f.file->display, "workload/rng.hpp")) return;
  // The call-shaped bans require an immediately following '(' on the same
  // line (the legacy regexes were line-local); the name bans fire on the
  // bare identifier.
  struct Ban {
    const char* name;
    bool call_shaped;
    const char* what;
  };
  static const Ban kBans[] = {
      {"rand", true, "rand() — use a seeded workload RNG"},
      {"srand", true, "srand() — use a seeded workload RNG"},
      {"random_device", false, "std::random_device — nondeterministic entropy"},
      {"time", true, "time() — wall clock"},
      {"clock", true, "clock() — wall clock"},
      {"localtime", false, "localtime — wall clock"},
      {"gmtime", false, "gmtime — wall clock"},
      {"system_clock", false, "system_clock — wall clock"},
      {"high_resolution_clock", false,
       "high_resolution_clock — may alias system_clock"},
  };
  const bool steady_banned =
      f.file->category == "src" && f.file->src_dir != "sim";
  // (line, ban index) hits; kBans.size() marks steady_clock.
  std::set<std::pair<std::size_t, std::size_t>> hits;
  for (std::size_t t = 0; t < tf.tokens.size(); ++t) {
    const Token& tok = tf.tokens[t];
    if (!is_ident(tok)) continue;
    for (std::size_t b = 0; b < std::size(kBans); ++b) {
      if (tok.text != kBans[b].name) continue;
      if (kBans[b].call_shaped &&
          !(t + 1 < tf.tokens.size() && is_punct(tf.tokens[t + 1], "(") &&
            tf.tokens[t + 1].line == tok.line)) {
        continue;
      }
      hits.emplace(tok.line, b);
    }
    if (steady_banned && tok.text == "steady_clock") {
      hits.emplace(tok.line, std::size(kBans));
    }
  }
  // Emit in the legacy order: line-major, ban-minor (steady last).
  for (const auto& [line, b] : hits) {
    if (b < std::size(kBans)) {
      report(findings, f, line, "CPC-L001",
             std::string("banned entropy/wall-clock source: ") +
                 kBans[b].what);
    } else {
      report(findings, f, line, "CPC-L001",
             "steady_clock outside src/sim/ — simulated time is the only "
             "clock the model may read");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L002 — unordered-container iteration (stripped view, legacy logic)
// ---------------------------------------------------------------------------

void check_l002(const Prepared& f, std::vector<Finding>& findings) {
  static const std::regex kDecl(
      R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  std::set<std::string> names;
  for (const std::string& line : f.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
      int depth = 1;
      while (pos < line.size() && depth > 0) {
        if (line[pos] == '<') ++depth;
        if (line[pos] == '>') --depth;
        ++pos;
      }
      static const std::regex kName(R"(^\s*([A-Za-z_]\w*))");
      std::smatch m;
      const std::string tail = line.substr(pos);
      if (std::regex_search(tail, m, kName)) {
        const std::string name = m[1];
        if (name != "iterator" && name != "const_iterator") names.insert(name);
      }
    }
  }
  if (names.empty()) return;
  for (const std::string& name : names) {
    const std::regex range_for(R"(for\s*\([^;{}]*:\s*(?:this->)?)" + name +
                               R"(\s*\))");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (std::regex_search(f.code[i], range_for) ||
          std::regex_search(
              f.code[i],
              std::regex("\\b" + name + R"(\s*\.\s*c?begin\s*\()"))) {
        report(findings, f, i + 1, "CPC-L002",
               "iteration over unordered container '" + name +
                   "' — order is implementation-defined; waive only with a "
                   "commutativity argument");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L003 — exhaustive enum switches (stripped view, legacy logic)
// ---------------------------------------------------------------------------

struct JoinedCode {
  std::string text;
  std::vector<std::size_t> line_start;

  explicit JoinedCode(const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
      line_start.push_back(text.size());
      text += line;
      text += '\n';
    }
  }
  std::size_t line_of(std::size_t offset) const {  // 1-based
    const auto it =
        std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

void collect_enums(const Prepared& f, std::map<std::string, EnumDef>& enums) {
  const JoinedCode joined(f.code);
  static const std::regex kEnum(R"(\benum\s+class\s+([A-Za-z_]\w*)[^{;]*\{)");
  for (std::sregex_iterator it(joined.text.begin(), joined.text.end(), kEnum),
       end;
       it != end; ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    const std::size_t close = joined.text.find('}', open);
    if (close == std::string::npos) continue;
    EnumDef def;
    def.file = f.file->display;
    def.line = joined.line_of(static_cast<std::size_t>(it->position()));
    std::istringstream body(joined.text.substr(open + 1, close - open - 1));
    std::string item;
    while (std::getline(body, item, ',')) {
      std::istringstream words(item);
      std::string name;
      if (words >> name) {
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) name = name.substr(0, eq);
        if (!name.empty()) def.enumerators.push_back(name);
      }
    }
    if (def.enumerators.empty()) continue;
    const std::string enum_name = (*it)[1];
    auto [existing, inserted] = enums.emplace(enum_name, def);
    if (!inserted && existing->second.enumerators != def.enumerators) {
      existing->second.ambiguous = true;
    }
  }
}

void check_l003(const Prepared& f, const std::map<std::string, EnumDef>& enums,
                std::vector<Finding>& findings) {
  const JoinedCode joined(f.code);
  const std::string& text = joined.text;
  static const std::regex kSwitch(R"(\bswitch\s*\()");
  static const std::regex kCase(R"(\bcase\s+([\w:]*\w)\s*:)");
  static const std::regex kDefault(R"(\bdefault\s*:)");
  for (std::sregex_iterator it(text.begin(), text.end(), kSwitch), end;
       it != end; ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int paren = 1;
    while (pos < text.size() && paren > 0) {
      if (text[pos] == '(') ++paren;
      if (text[pos] == ')') --paren;
      ++pos;
    }
    while (pos < text.size() && text[pos] != '{') ++pos;
    if (pos >= text.size()) continue;
    ++pos;
    int depth = 1;
    std::vector<std::pair<std::size_t, std::size_t>> depth1;
    std::size_t segment = pos;
    while (pos < text.size() && depth > 0) {
      if (text[pos] == '{') {
        if (depth == 1) depth1.emplace_back(segment, pos);
        ++depth;
      } else if (text[pos] == '}') {
        --depth;
        if (depth == 1) segment = pos + 1;
      }
      ++pos;
    }
    if (depth == 0 && segment < pos - 1) depth1.emplace_back(segment, pos - 1);

    std::set<std::string> cased;
    std::string enum_name;
    std::optional<std::size_t> default_off;
    for (const auto& [from, to] : depth1) {
      const std::string seg = text.substr(from, to - from);
      for (std::sregex_iterator c(seg.begin(), seg.end(), kCase), cend;
           c != cend; ++c) {
        const std::string label = (*c)[1];
        const std::size_t last = label.rfind("::");
        if (last == std::string::npos) continue;
        cased.insert(label.substr(last + 2));
        std::string qualifier = label.substr(0, last);
        const std::size_t prev = qualifier.rfind("::");
        if (prev != std::string::npos) qualifier = qualifier.substr(prev + 2);
        enum_name = qualifier;
      }
      std::smatch d;
      if (!default_off && std::regex_search(seg, d, kDefault)) {
        default_off = from + static_cast<std::size_t>(d.position());
      }
    }
    const auto def = enums.find(enum_name);
    if (enum_name.empty() || def == enums.end() || def->second.ambiguous) {
      continue;
    }
    const std::size_t switch_line =
        joined.line_of(static_cast<std::size_t>(it->position()));
    if (default_off) {
      report(findings, f, joined.line_of(*default_off), "CPC-L003",
             "switch over enum " + enum_name +
                 " has a default: — enumerate every case so -Wswitch guards "
                 "new enumerators, or waive with justification");
      continue;
    }
    std::vector<std::string> missing;
    for (const std::string& e : def->second.enumerators) {
      if (!cased.count(e)) missing.push_back(e);
    }
    if (!missing.empty()) {
      std::string list;
      for (const std::string& m : missing) {
        if (!list.empty()) list += ", ";
        list += m;
      }
      report(findings, f, switch_line, "CPC-L003",
             "switch over enum " + enum_name + " does not handle: " + list);
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L004 — structured diagnostics (stripped view, legacy logic)
// ---------------------------------------------------------------------------

void check_l004(const Prepared& f, std::vector<Finding>& findings) {
  static const std::regex kStringViolation(R"(InvariantViolation\s*\(\s*")");
  static const std::regex kNakedThrow(
      R"(\bthrow\s+std::(runtime_error|logic_error)\s*\()");
  const bool diagnostic_layer =
      f.file->category == "src" &&
      (f.file->src_dir == "cache" || f.file->src_dir == "core");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kStringViolation)) {
      report(findings, f, i + 1, "CPC-L004",
             "InvariantViolation built from a bare string — construct a "
             "cpc::Diagnostic (invariant, site, addresses, detail) instead");
    }
    if (diagnostic_layer && std::regex_search(f.code[i], kNakedThrow)) {
      report(findings, f, i + 1, "CPC-L004",
             "naked std exception in a layer with structured diagnostics — "
             "throw InvariantViolation with a cpc::Diagnostic");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L005 — header hygiene (stripped view, legacy logic)
// ---------------------------------------------------------------------------

void check_l005(const Prepared& f, std::vector<Finding>& findings) {
  if (!f.file->is_header) return;
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  bool seen_code = false;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (!seen_code && !blank(line)) {
      seen_code = true;
      std::istringstream first(line);
      std::string a, b;
      first >> a >> b;
      if (a != "#pragma" || b != "once") {
        report(findings, f, i + 1, "CPC-L005",
               "#pragma once must be the first directive in a header");
      }
    }
    if (std::regex_search(line, kUsingNamespace)) {
      report(findings, f, i + 1, "CPC-L005",
             "using namespace in a header leaks into every includer");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L006 — include layering (include graph)
// ---------------------------------------------------------------------------

int dir_rank(const std::string& dir) {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},   {"mem", 1},  {"stats", 1},  {"compress", 1},
      {"cache", 2},    {"cpu", 3},  {"core", 3},   {"workload", 4},
      {"analysis", 4}, {"sim", 5},  {"verify", 6}, {"net", 7},
  };
  const auto it = kRanks.find(dir);
  return it == kRanks.end() ? -1 : it->second;
}

void check_l006(const Prepared& f, const IncludeGraph& includes,
                std::vector<Finding>& findings) {
  int rank = 100;  // tools/tests/bench/examples may include anything
  if (f.file->category == "src") {
    rank = dir_rank(f.file->src_dir);
    if (rank < 0) return;  // unranked src subdirectory
  }
  const auto it = includes.edges.find(f.file->display);
  if (it == includes.edges.end()) return;
  for (const IncludeEdge& edge : it->second) {
    const std::string& header = edge.header;
    if (header == "verify/fault.hpp") continue;  // documented rank-0 leaf
    const std::size_t slash = header.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const int header_rank = dir_rank(header.substr(0, slash));
    if (header_rank < 0) continue;  // not a ranked project directory
    if (header_rank > rank) {
      report(findings, f, edge.line, "CPC-L006",
             "include of \"" + header + "\" (layer " +
                 std::to_string(header_rank) + ") from " + f.file->src_dir +
                 "/ (layer " + std::to_string(rank) +
                 ") inverts the dependency order");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L007 — registry / enum sync
// ---------------------------------------------------------------------------

struct RegistryPair {
  const char* header_suffix;
  const char* enum_name;
  const char* def_name;
  const char* row_macro;
};

constexpr RegistryPair kRegistries[] = {
    {"common/check.hpp", "Invariant", "invariant_registry.def",
     "CPC_INVARIANT_ROW"},
    {"verify/fault.hpp", "FaultKind", "fault_registry.def", "CPC_FAULT_ROW"},
    {"compress/codec.hpp", "CodecKind", "codec_registry.def",
     "CPC_CODEC_ROW"},
    {"lint/registry.hpp", "CheckId", "lint_registry.def", "CPC_LINT_ROW"},
};

bool load_def(const fs::path& def_path, std::vector<std::string>& raw) {
  std::ifstream in(def_path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) raw.push_back(std::move(line));
  return true;
}

std::vector<std::pair<std::string, std::size_t>> def_rows(
    const std::vector<std::string>& def_code, const char* row_macro) {
  const std::regex row(std::string(row_macro) + R"(\(\s*([A-Za-z_]\w*))");
  std::vector<std::pair<std::string, std::size_t>> rows;
  for (std::size_t i = 0; i < def_code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(def_code[i], m, row)) rows.emplace_back(m[1], i + 1);
  }
  return rows;
}

void check_l007(const Prepared& f, const std::map<std::string, EnumDef>& enums,
                std::vector<Finding>& findings) {
  for (const RegistryPair& reg : kRegistries) {
    if (!ends_with(f.file->display, reg.header_suffix)) continue;
    const fs::path def_path = f.file->path.parent_path() / reg.def_name;
    std::vector<std::string> def_raw;
    if (!load_def(def_path, def_raw)) {
      report(findings, f, 1, "CPC-L007",
             std::string("registry file ") + reg.def_name +
                 " not found next to " + reg.header_suffix);
      continue;
    }
    const std::vector<std::string> def_code = lex(def_raw).stripped;
    const auto rows = def_rows(def_code, reg.row_macro);
    const auto def = enums.find(reg.enum_name);
    if (def == enums.end()) continue;  // enum not in the scanned set
    const std::vector<std::string>& want = def->second.enumerators;
    const std::string def_display = def_path.generic_string();
    for (std::size_t i = 0; i < std::max(want.size(), rows.size()); ++i) {
      const std::string have = i < rows.size() ? rows[i].first : "<missing>";
      const std::string need = i < want.size() ? want[i] : "<extra>";
      if (have == need) continue;
      findings.push_back(
          {def_display, i < rows.size() ? rows[i].second : rows.size() + 1,
           "CPC-L007",
           std::string(reg.def_name) + " row " + std::to_string(i) + " is '" +
               have + "' but enum " + reg.enum_name + " declares '" + need +
               "' — registry rows must mirror the enum exactly, in order"});
      break;  // one finding per registry is enough to localise the drift
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L008 — centralized wall-clock timing (stripped view, legacy logic)
// ---------------------------------------------------------------------------

void check_l008(const Prepared& f, std::vector<Finding>& findings) {
  static const char* const kSanctioned[] = {
      "src/sim/bench_meter.hpp",
      "src/sim/bench_meter.cpp",
      "src/sim/sweep_runner.cpp",
      "src/common/mutex.hpp",
  };
  if (!flow_checked_category(*f.file)) return;
  for (const char* ok : kSanctioned) {
    if (ends_with(f.file->display, ok)) return;
  }
  static const std::regex kChronoUse(R"(\bstd\s*::\s*chrono\b)");
  static const std::regex kChronoInclude(R"(#\s*include\s*<chrono>)");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kChronoUse) ||
        std::regex_search(f.code[i], kChronoInclude)) {
      report(findings, f, i + 1, "CPC-L008",
             "direct std::chrono use outside the sanctioned timing sites — "
             "measure through sim::Stopwatch (sim/bench_meter.hpp)");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L009 — centralized process management (stripped view, legacy logic)
// ---------------------------------------------------------------------------

void check_l009(const Prepared& f, std::vector<Finding>& findings) {
  static const char* const kSanctioned[] = {
      "src/sim/ipc.cpp",
      "src/sim/shard_supervisor.cpp",
  };
  if (!flow_checked_category(*f.file)) return;
  for (const char* ok : kSanctioned) {
    if (ends_with(f.file->display, ok)) return;
  }
  static const std::regex kProcessCall(
      R"((^|[^:_\w.>])(fork|vfork|waitpid|wait3|wait4|pipe|pipe2|kill|killpg)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kProcessCall)) {
      report(findings, f, i + 1, "CPC-L009",
             "raw process-management call outside the ipc layer — spawn and "
             "supervise through sim::ipc (sim/ipc.hpp) or the "
             "ShardSupervisor (sim/shard_supervisor.hpp)");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L010 — centralized socket management (stripped view, legacy logic)
// ---------------------------------------------------------------------------

void check_l010(const Prepared& f, std::vector<Finding>& findings) {
  if (!flow_checked_category(*f.file)) return;
  const bool in_socket_impl = ends_with(f.file->display, "src/net/socket.cpp");
  const bool may_poll =
      in_socket_impl || ends_with(f.file->display, "src/sim/ipc.cpp");
  static const std::regex kSocketCall(
      R"((^|[^:_\w.>])(socket|socketpair|bind|listen|accept|accept4|connect|setsockopt|getsockopt|sendto|recvfrom|sendmsg|recvmsg)\s*\()");
  static const std::regex kPollCall(R"((^|[^:_\w.>])(poll|ppoll)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (!in_socket_impl && std::regex_search(f.code[i], kSocketCall)) {
      report(findings, f, i + 1, "CPC-L010",
             "raw socket call outside the net layer — connect and listen "
             "through cpc::net (net/socket.hpp)");
    }
    if (!may_poll && std::regex_search(f.code[i], kPollCall)) {
      report(findings, f, i + 1, "CPC-L010",
             "raw poll call outside net/socket.cpp and sim/ipc.cpp — "
             "multiplex through net::poll_sockets (net/socket.hpp)");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L011 — lock-order / deadlock-cycle detection
// ---------------------------------------------------------------------------

struct LockEdge {
  std::string holder_fn;  // function holding `from` when `to` is acquired
  std::string file;       // display path of the witness
  std::size_t line = 0;   // witness line (the nested acquisition or call)
  std::string via;        // callee name for interprocedural edges, else ""
};

/// Resolves a call to function-index entries by simple name. Over-broad
/// names (> 3 candidates) are skipped: a wrong resolution would fabricate
/// edges, and a deadlock through such a hub would still be caught at its
/// concrete acquisition sites.
std::vector<std::size_t> resolve_call(const FunctionIndex& index,
                                      const std::string& name) {
  const auto it = index.by_name.find(name);
  if (it == index.by_name.end() || it->second.size() > 3) return {};
  return it->second;
}

std::map<std::size_t, std::set<std::string>> transitive_locks(
    const FunctionIndex& index) {
  std::map<std::size_t, std::set<std::string>> trans;
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    for (const LockSite& lock : index.functions[i].locks) {
      trans[i].insert(lock.mutex);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < index.functions.size(); ++i) {
      for (const CallSite& call : index.functions[i].calls) {
        if (call.in_thread_ctor) continue;  // runs on another thread
        for (const std::size_t callee : resolve_call(index, call.name)) {
          for (const std::string& m : trans[callee]) {
            if (trans[i].insert(m).second) changed = true;
          }
        }
      }
    }
  }
  return trans;
}

void check_l011(const FunctionIndex& index,
                const std::map<std::string, const Prepared*>& by_display,
                std::vector<Finding>& findings) {
  const auto trans = transitive_locks(index);

  // Edge set: from-mutex -> to-mutex with the first witness kept.
  std::map<std::string, std::map<std::string, LockEdge>> graph;
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    const FunctionDef& fn = index.functions[i];
    if (!flow_checked_category(*fn.file)) continue;
    for (const LockSite& held : fn.locks) {
      for (const LockSite& nested : fn.locks) {
        if (nested.tok <= held.tok || nested.tok >= held.scope_end) continue;
        if (nested.mutex == held.mutex) continue;
        graph[held.mutex].emplace(
            nested.mutex, LockEdge{fn.qualified, fn.file->display,
                                   nested.line, ""});
      }
      for (const CallSite& call : fn.calls) {
        if (call.in_thread_ctor) continue;
        if (call.tok <= held.tok || call.tok >= held.scope_end) continue;
        for (const std::size_t callee : resolve_call(index, call.name)) {
          const auto ct = trans.find(callee);
          if (ct == trans.end()) continue;
          for (const std::string& m : ct->second) {
            if (m == held.mutex) continue;
            graph[held.mutex].emplace(
                m, LockEdge{fn.qualified, fn.file->display, call.line,
                            index.functions[callee].qualified});
          }
        }
      }
    }
  }

  // Any cycle in the acquisition graph is a potential deadlock. For each
  // edge a->b, search for a path b ->* a; report each distinct cycle once,
  // at the witness of its lexicographically first edge.
  std::set<std::string> reported;
  for (const auto& [a, outs] : graph) {
    for (const auto& [b, edge] : outs) {
      // DFS from b looking for a.
      std::vector<std::string> path{b};
      std::set<std::string> visited{b};
      std::vector<std::string> found;
      std::function<bool(const std::string&)> dfs =
          [&](const std::string& node) {
            if (node == a) return true;
            const auto it = graph.find(node);
            if (it == graph.end()) return false;
            for (const auto& [next, unused] : it->second) {
              (void)unused;
              if (next == a) {
                path.push_back(a);
                return true;
              }
              if (!visited.insert(next).second) continue;
              path.push_back(next);
              if (dfs(next)) return true;
              path.pop_back();
            }
            return false;
          };
      const bool cyclic = (b == a) || dfs(b);
      if (!cyclic) continue;
      // Cycle nodes: a -> b -> ... -> a. Canonicalise by rotating the
      // smallest node to the front so each cycle is reported once.
      std::vector<std::string> cycle{a};
      cycle.insert(cycle.end(), path.begin(), path.end());
      if (cycle.back() != a) cycle.push_back(a);
      std::vector<std::string> ring(cycle.begin(), cycle.end() - 1);
      const std::size_t min_at = static_cast<std::size_t>(
          std::min_element(ring.begin(), ring.end()) - ring.begin());
      std::rotate(ring.begin(),
                  ring.begin() + static_cast<long>(min_at), ring.end());
      std::string key;
      for (const std::string& n : ring) key += n + ";";
      if (!reported.insert(key).second) continue;

      std::string named_path;
      for (const std::string& n : cycle) {
        if (!named_path.empty()) named_path += " -> ";
        named_path += n;
      }
      std::string detail;
      for (std::size_t k = 0; k + 1 < cycle.size(); ++k) {
        const auto eit = graph.find(cycle[k]);
        if (eit == graph.end()) continue;
        const auto wit = eit->second.find(cycle[k + 1]);
        if (wit == eit->second.end()) continue;
        const LockEdge& w = wit->second;
        detail += "; '" + cycle[k + 1] + "' taken while holding '" +
                  cycle[k] + "' in " + w.holder_fn +
                  (w.via.empty() ? "" : " (via " + w.via + ")") + " at " +
                  w.file + ":" + std::to_string(w.line);
      }
      const auto prep = by_display.find(edge.file);
      if (prep == by_display.end()) continue;
      report(findings, *prep->second, edge.line, "CPC-L011",
             "lock-order cycle: " + named_path + detail);
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L012 — no blocking calls reachable from the poll loop
// ---------------------------------------------------------------------------

bool blocking_call(const std::string& name) {
  static const std::set<std::string> kBlocking = {
      "sleep_ms",      "sleep_for",  "sleep_until", "usleep",
      "nanosleep",     "wait_blocking", "wait_for", "wait",
      "connect_unix",  "system",     "getline",     "read_trace_file",
  };
  return kBlocking.count(name) != 0;
}

void check_l012(const FunctionIndex& index,
                const std::map<std::string, const Prepared*>& by_display,
                std::vector<Finding>& findings) {
  // Roots: functions that drive a net::poll_sockets event loop.
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    if (!flow_checked_category(*index.functions[i].file)) continue;
    for (const CallSite& call : index.functions[i].calls) {
      if (call.name == "poll_sockets" && !call.in_thread_ctor) {
        roots.push_back(i);
        break;
      }
    }
  }
  if (roots.empty()) return;

  // BFS over the call graph; std::thread constructor arguments (the
  // executor thread) are not loop-reachable by construction.
  std::map<std::size_t, std::size_t> parent;  // fn -> caller (BFS tree)
  std::vector<std::size_t> queue = roots;
  std::set<std::size_t> seen(roots.begin(), roots.end());
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t fn = queue[qi];
    for (const CallSite& call : index.functions[fn].calls) {
      if (call.in_thread_ctor) continue;
      for (const std::size_t callee : resolve_call(index, call.name)) {
        if (!flow_checked_category(*index.functions[callee].file)) continue;
        if (!seen.insert(callee).second) continue;
        parent[callee] = fn;
        queue.push_back(callee);
      }
    }
  }

  std::set<std::pair<std::string, std::size_t>> reported;  // (file, line)
  for (const std::size_t fn : queue) {
    const FunctionDef& def = index.functions[fn];
    for (const CallSite& call : def.calls) {
      if (call.in_thread_ctor || !blocking_call(call.name)) continue;
      if (!reported.emplace(def.file->display, call.line).second) continue;
      std::string path = def.qualified;
      for (auto at = parent.find(fn); at != parent.end();
           at = parent.find(at->second)) {
        path = index.functions[at->second].qualified + " -> " + path;
      }
      const auto prep = by_display.find(def.file->display);
      if (prep == by_display.end()) continue;
      report(findings, *prep->second, call.line, "CPC-L012",
             "blocking call '" + call.qualified +
                 "' is reachable from the poll event loop (" + path +
                 ") — it stalls every connected client; hand the work to "
                 "the executor thread or waive with an argument");
    }
  }
}

// ---------------------------------------------------------------------------
// CPC-L013 — unchecked status returns
// ---------------------------------------------------------------------------

bool must_check_call(const std::string& name) {
  static const std::set<std::string> kMustCheck = {
      "read_socket",   "write_socket", "poll_sockets",
      "try_wait",      "wait_blocking", "write_frame",
      "read_some",     "get_u64",      "get_string",
      "decode_message", "decode_job_spec", "decode_journal_line",
  };
  return kMustCheck.count(name) != 0;
}

std::size_t match_paren_at(const std::vector<Token>& ts, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < ts.size(); ++i) {
    if (is_punct(ts[i], "(")) ++depth;
    if (is_punct(ts[i], ")")) {
      if (--depth == 0) return i;
    }
  }
  return ts.size();
}

void check_l013(const TokenFile& tf, std::vector<Finding>& findings) {
  const Prepared& f = tf.prep;
  if (!flow_checked_category(*f.file)) return;
  const std::vector<Token>& ts = tf.tokens;
  for (std::size_t t = 0; t < ts.size(); ++t) {
    if (ts[t].pp || !is_ident(ts[t]) || !must_check_call(ts[t].text)) continue;
    if (t + 1 >= ts.size() || !is_punct(ts[t + 1], "(")) continue;
    // Walk back to the head of the call chain (net::read_socket,
    // decoder.next, state.journal.append, ...).
    std::size_t s = t;
    std::string qualified = ts[t].text;
    while (s > 0) {
      const Token& p = ts[s - 1];
      if ((is_punct(p, "::") || is_punct(p, ".") || is_punct(p, "->")) &&
          s >= 2 && is_ident(ts[s - 2])) {
        qualified = ts[s - 2].text + p.text + qualified;
        s -= 2;
        continue;
      }
      break;
    }
    // A discarded call is an expression statement: the chain starts a
    // statement and the call's value meets a bare ';'.
    bool statement_start = s == 0;
    bool explicit_discard = false;
    if (!statement_start) {
      const Token& p = ts[s - 1];
      // ':' is deliberately absent: a call after `case X:` is rare, and
      // including it would flag the used result of `c ? a : get_u64(f)`.
      statement_start = is_punct(p, ";") || is_punct(p, "{") ||
                        is_punct(p, "}") ||
                        (is_ident(p) && (p.text == "else" || p.text == "do"));
      if (is_punct(p, ")")) {
        // Either a `(void)` cast (sanctioned discard) or a control-flow
        // header like `if (...) call();` (a discard statement).
        if (s >= 3 && is_ident(ts[s - 2]) && ts[s - 2].text == "void" &&
            is_punct(ts[s - 3], "(")) {
          explicit_discard = true;
        } else {
          statement_start = true;
        }
      }
    }
    if (!statement_start || explicit_discard) continue;
    const std::size_t close = match_paren_at(ts, t + 1);
    if (close + 1 >= ts.size() || !is_punct(ts[close + 1], ";")) continue;
    report(findings, f, ts[t].line, "CPC-L013",
           "result of '" + qualified +
               "' is discarded — a dropped net/ipc/journal status turns "
               "errors into silent corruption; consume it or cast to (void) "
               "with a rationale");
  }
}

// ---------------------------------------------------------------------------
// CPC-L014 — invariant-coverage closure
// ---------------------------------------------------------------------------

void check_l014(const std::vector<TokenFile>& files,
                std::vector<Finding>& findings) {
  bool have_src = false;
  bool have_tests = false;
  for (const TokenFile& tf : files) {
    if (tf.prep.file->category == "src") have_src = true;
    if (tf.prep.file->category == "tests") have_tests = true;
  }
  // Coverage closure is only meaningful over a whole tree: without both
  // sides of the src/tests ledger every row would look dead.
  if (!have_src || !have_tests) return;

  struct CoveragePair {
    const char* header_suffix;
    const char* enum_name;
    const char* def_name;
    const char* row_macro;
  };
  static const CoveragePair kPairs[] = {
      {"common/check.hpp", "Invariant", "invariant_registry.def",
       "CPC_INVARIANT_ROW"},
      {"verify/fault.hpp", "FaultKind", "fault_registry.def",
       "CPC_FAULT_ROW"},
  };
  for (const CoveragePair& pair : kPairs) {
    const TokenFile* header = nullptr;
    for (const TokenFile& tf : files) {
      if (ends_with(tf.prep.file->display, pair.header_suffix)) {
        header = &tf;
        break;
      }
    }
    if (header == nullptr) continue;
    const fs::path def_path =
        header->prep.file->path.parent_path() / pair.def_name;
    std::vector<std::string> def_raw;
    if (!load_def(def_path, def_raw)) continue;  // CPC-L007 reports this
    const LexOutput def_lex = lex(def_raw);
    const auto rows = def_rows(def_lex.stripped, pair.row_macro);
    const auto def_waivers = collect_waivers(def_raw, def_lex.stripped);
    const std::string def_display = def_path.generic_string();

    // Where is Enum::kRow referenced? The registry header itself doesn't
    // count (declaring a row is not raising it).
    std::set<std::string> in_src;
    std::set<std::string> in_tests;
    for (const TokenFile& tf : files) {
      const std::string& category = tf.prep.file->category;
      const bool src_side =
          category == "src" &&
          !ends_with(tf.prep.file->display, pair.header_suffix);
      const bool test_side = category == "tests";
      if (!src_side && !test_side) continue;
      const std::vector<Token>& ts = tf.tokens;
      for (std::size_t t = 0; t + 2 < ts.size(); ++t) {
        if (!is_ident(ts[t]) || ts[t].text != pair.enum_name) continue;
        if (!is_punct(ts[t + 1], "::") || !is_ident(ts[t + 2])) continue;
        if (src_side) in_src.insert(ts[t + 2].text);
        if (test_side) in_tests.insert(ts[t + 2].text);
      }
    }
    for (const auto& [name, line] : rows) {
      const std::size_t idx = line - 1;
      const bool waived = idx < def_waivers.size() &&
                          def_waivers[idx].count("CPC-L014") != 0;
      if (waived) continue;
      if (in_src.count(name) == 0) {
        findings.push_back(
            {def_display, line, "CPC-L014",
             "registry row '" + name + "' (" + pair.enum_name +
                 ") is never raised in src/ — dead detection logic; wire it "
                 "up or remove the row"});
      }
      if (in_tests.count(name) == 0) {
        findings.push_back(
            {def_display, line, "CPC-L014",
             "registry row '" + name + "' (" + pair.enum_name +
                 ") is never tripped in tests/ — add a trip test or waive "
                 "in the .def with an argument"});
      }
    }
  }
}

}  // namespace

std::vector<Finding> run_token_checks(const std::vector<SourceFile>& files) {
  // One lexer pass per file: stripped view, token stream and waivers all
  // come out of it; every check below shares the result.
  std::vector<TokenFile> prepared;
  prepared.reserve(files.size());
  std::vector<std::vector<Token>> token_streams;
  token_streams.reserve(files.size());
  for (const SourceFile& f : files) {
    LexOutput out = lex(f.raw);
    TokenFile tf;
    tf.prep.file = &f;
    tf.prep.code = std::move(out.stripped);
    tf.prep.waivers = collect_waivers(f.raw, tf.prep.code);
    tf.tokens = std::move(out.tokens);
    token_streams.push_back(tf.tokens);
    prepared.push_back(std::move(tf));
  }

  const IncludeGraph includes = build_include_graph(files);
  const FunctionIndex index = build_function_index(files, token_streams);

  std::map<std::string, EnumDef> enums;
  for (const TokenFile& tf : prepared) collect_enums(tf.prep, enums);

  std::map<std::string, const Prepared*> by_display;
  for (const TokenFile& tf : prepared) {
    by_display[tf.prep.file->display] = &tf.prep;
  }

  std::vector<Finding> findings;
  for (const TokenFile& tf : prepared) {
    check_l001(tf, findings);
    check_l002(tf.prep, findings);
    check_l003(tf.prep, enums, findings);
    check_l004(tf.prep, findings);
    check_l005(tf.prep, findings);
    check_l006(tf.prep, includes, findings);
    check_l007(tf.prep, enums, findings);
    check_l008(tf.prep, findings);
    check_l009(tf.prep, findings);
    check_l010(tf.prep, findings);
    check_l013(tf, findings);
  }
  check_l011(index, by_display, findings);
  check_l012(index, by_display, findings);
  check_l014(prepared, findings);
  return findings;
}

}  // namespace cpc::lint
