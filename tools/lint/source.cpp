#include "lint/source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>

namespace fs = std::filesystem;

namespace cpc::lint {

bool blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c); });
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::set<std::string>> collect_waivers(
    const std::vector<std::string>& raw,
    const std::vector<std::string>& code) {
  static const std::regex kWaiver(R"(cpc-lint:\s*allow\(([^)]*)\))");
  std::vector<std::set<std::string>> waivers(raw.size());
  std::set<std::string> pending;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::set<std::string> here;
    std::smatch m;
    std::string rest = raw[i];
    while (std::regex_search(rest, m, kWaiver)) {
      std::string ids = m[1];
      std::replace(ids.begin(), ids.end(), ',', ' ');
      std::istringstream tokens(ids);
      std::string id;
      while (tokens >> id) here.insert(id);
      rest = m.suffix();
    }
    if (i < code.size() && blank(code[i])) {
      pending.insert(here.begin(), here.end());
      continue;
    }
    here.insert(pending.begin(), pending.end());
    pending.clear();
    waivers[i] = std::move(here);
  }
  return waivers;
}

void categorise(SourceFile& f) {
  std::vector<std::string> parts;
  for (const fs::path& p : f.path) parts.push_back(p.generic_string());
  // Fixture re-rooting: categorise by what follows lint/fixtures/.
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "lint" && parts[i + 1] == "fixtures") {
      parts.erase(parts.begin(), parts.begin() + static_cast<long>(i) + 2);
      break;
    }
  }
  f.components = parts;
  static const std::set<std::string> kTops = {"src",   "tools",    "tests",
                                             "bench", "examples", "scripts"};
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (kTops.count(parts[i])) {
      f.category = parts[i];
      if (parts[i] == "src" && i + 2 < parts.size()) f.src_dir = parts[i + 1];
      break;
    }
  }
}

namespace {

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

bool under_fixtures(const fs::path& p) {
  return p.generic_string().find("lint/fixtures") != std::string::npos;
}

}  // namespace

int collect_files(const fs::path& root, std::vector<fs::path>& files) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    files.push_back(root);
    return 0;
  }
  if (!fs::is_directory(root, ec)) {
    std::cerr << "cpc_lint: cannot read " << root << "\n";
    return 2;
  }
  const bool root_in_fixtures = under_fixtures(root);
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::cerr << "cpc_lint: walk error under " << root << ": "
                << ec.message() << "\n";
      return 2;
    }
    const fs::path& p = it->path();
    if (it->is_directory()) {
      const std::string name = p.filename().string();
      if (!name.empty() && name[0] == '.') it.disable_recursion_pending();
      if (name == "build") it.disable_recursion_pending();
      if (!root_in_fixtures && under_fixtures(p)) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (!it->is_regular_file() || !cpp_source(p)) continue;
    if (!root_in_fixtures && under_fixtures(p)) continue;
    files.push_back(p);
  }
  return 0;
}

bool load_file(const fs::path& p, SourceFile& f) {
  f.path = p;
  f.display = p.generic_string();
  f.is_header = p.extension() == ".hpp" || p.extension() == ".h" ||
                p.extension() == ".hh";
  std::ifstream in(p);
  if (!in) {
    std::cerr << "cpc_lint: cannot open " << p << "\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) f.raw.push_back(std::move(line));
  categorise(f);
  return true;
}

void report(std::vector<Finding>& findings, const Prepared& f,
            std::size_t line_1based, const std::string& id,
            std::string message) {
  const std::size_t idx = line_1based == 0 ? 0 : line_1based - 1;
  if (idx < f.waivers.size() && f.waivers[idx].count(id)) return;
  findings.push_back({f.file->display, line_1based, id, std::move(message)});
}

void sort_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.id < b.id;
                   });
}

}  // namespace cpc::lint
