#include "lint/lexer.hpp"

#include <cctype>

namespace cpc::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool raw_string_prefix(const std::string& s) {
  return s == "R" || s == "LR" || s == "uR" || s == "UR" || s == "u8R";
}

bool exponent_tail(const std::string& number, char c) {
  if (c != '+' && c != '-') return false;
  if (number.empty()) return false;
  const char last = number.back();
  return last == 'e' || last == 'E' || last == 'p' || last == 'P';
}

}  // namespace

LexOutput lex(const std::vector<std::string>& raw) {
  LexOutput out;
  out.stripped.resize(raw.size());

  bool in_block = false;  // inside a /* */ comment
  bool pp = false;        // inside a # directive (splice-continued)
  bool pp_cont = false;   // previous line ended with a backslash
  std::string cur;        // identifier/number being accumulated
  bool cur_num = false;
  std::size_t cur_line = 0;  // 1-based line where `cur` started

  auto flush = [&] {
    if (cur.empty()) return;
    out.tokens.push_back({cur_num ? TokKind::kNumber : TokKind::kIdent,
                          cur, cur_line, pp});
    cur.clear();
    cur_num = false;
  };

  std::size_t li = 0;  // current line (0-based)
  std::size_t i = 0;   // current column
  while (li < raw.size()) {
    const std::string& line = raw[li];
    if (i >= line.size()) {
      // End of physical line. A trailing backslash in code splices the
      // next line on (tokens continue); anything else ends the token.
      const bool spliced = !line.empty() && line.back() == '\\';
      if (!spliced || in_block) flush();
      pp_cont = spliced && !in_block;
      if (!pp_cont) pp = false;
      ++li;
      i = 0;
      continue;
    }
    if (i == 0 && !in_block && !pp_cont) {
      // Fresh logical line: does it open a preprocessor directive?
      std::size_t j = 0;
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j])) != 0) {
        ++j;
      }
      pp = j < line.size() && line[j] == '#';
    }
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      flush();
      i = line.size();  // rest of the physical line is a comment
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      flush();
      in_block = true;
      i += 2;
      continue;
    }
    if (c == '"' && !cur.empty() && !cur_num && raw_string_prefix(cur)) {
      // Raw string literal: the prefix identifier is part of the literal.
      // The stripped view keeps the prefix and an empty "" (the same shape
      // the line-local checks expect for ordinary strings).
      const std::size_t open_line = li;
      cur.clear();
      cur_num = false;
      ++i;
      std::string delim;
      while (i < raw[li].size() && raw[li][i] != '(') delim += raw[li][i++];
      if (i < raw[li].size()) ++i;  // past '('
      const std::string close = ")" + delim + "\"";
      while (li < raw.size()) {
        const std::size_t pos = raw[li].find(close, i);
        if (pos != std::string::npos) {
          i = pos + close.size();
          break;
        }
        ++li;
        i = 0;
      }
      out.stripped[open_line] += "\"\"";
      out.tokens.push_back({TokKind::kString, "", open_line + 1, pp});
      if (li >= raw.size()) break;  // unterminated raw string
      continue;
    }
    if (c == '\'' && cur_num && i + 1 < line.size() &&
        ident_char(line[i + 1])) {
      // Digit separator inside a pp-number (30'000), not a char literal.
      cur += '\'';
      out.stripped[li] += '\'';
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      flush();
      const char quote = c;
      out.stripped[li] += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      out.stripped[li] += quote;  // unterminated literals end with the line
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kCharLit,
                            "", li + 1, pp});
      if (i > line.size()) i = line.size();
      continue;
    }
    if (c == '\\' && i + 1 >= line.size()) {
      // Line splice: the stripped view keeps the backslash; the token
      // stream joins across it (handled at end-of-line above).
      out.stripped[li] += c;
      ++i;
      continue;
    }
    out.stripped[li] += c;
    if (!cur.empty()) {
      if (ident_char(c) || (cur_num && (c == '.' || exponent_tail(cur, c)))) {
        cur += c;
        ++i;
        continue;
      }
      flush();
    }
    if (ident_start(c)) {
      cur = c;
      cur_num = false;
      cur_line = li + 1;
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      cur = c;
      cur_num = true;
      cur_line = li + 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Punctuation. "::" and "->" matter structurally; everything else is
    // a single-character token.
    if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
      out.stripped[li] += ':';
      out.tokens.push_back({TokKind::kPunct, "::", li + 1, pp});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
      out.stripped[li] += '>';
      out.tokens.push_back({TokKind::kPunct, "->", li + 1, pp});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), li + 1, pp});
    ++i;
  }
  flush();
  return out;
}

}  // namespace cpc::lint
