#pragma once
// The check registry: one stable ID per lint check, with title and
// documentation sourced from lint_registry.def so `--list`/`--explain`
// output can never drift from the checks themselves.
//
// CheckId is declared textually (not X-macro-generated) on purpose: the
// linter's own CPC-L007 registry-sync check compares these enumerators
// against the .def rows, which closes the loop on this registry too.

#include <cstddef>
#include <string_view>

namespace cpc::lint {

enum class CheckId : unsigned {
  kL001,
  kL002,
  kL003,
  kL004,
  kL005,
  kL006,
  kL007,
  kL008,
  kL009,
  kL010,
  kL011,
  kL012,
  kL013,
  kL014,
};

/// Number of checks. Referencing the last enumerator (no kCount sentinel —
/// CPC-L007 mirrors every enumerator against a .def row) keeps this in
/// lock-step with the enum.
inline constexpr std::size_t kCheckCount =
    static_cast<std::size_t>(CheckId::kL014) + 1;

struct CheckInfo {
  CheckId check;
  const char* id;     // stable "CPC-L0NN" finding ID
  const char* title;  // one-line summary for --list
  const char* doc;    // documentation paragraph for --explain
};

/// The full registry table, in CheckId order.
const CheckInfo* check_table();

/// Looks a check up by its stable ID ("CPC-L011"); nullptr if unknown.
const CheckInfo* find_check(std::string_view id);

}  // namespace cpc::lint
