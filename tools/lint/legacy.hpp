#pragma once
// The pre-port regex engine, kept compiled-in behind `--engine legacy` as
// the living reference for the zero-diff proof: tests/lint/zero_diff.sh
// runs both engines over the tree and the fixture corpora and diffs their
// CPC-L001..L010 findings byte-for-byte. The check bodies here are the
// original tools/cpc_lint.cpp implementations, unmodified apart from the
// shared SourceFile/Prepared plumbing.

#include <vector>

#include "lint/source.hpp"

namespace cpc::lint {

/// Runs checks CPC-L001..L010 with the original regex-over-stripped-lines
/// implementations (the legacy engine does not know L011..L014).
std::vector<Finding> run_legacy_checks(const std::vector<SourceFile>& files);

}  // namespace cpc::lint
