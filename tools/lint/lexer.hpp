#pragma once
// Comment- and string-aware C++ lexer for the lint library.
//
// One pass over a file's raw lines produces both views every check
// consumes:
//
//   * `tokens`  — the token stream (identifiers, numbers, punctuation,
//     literal placeholders) with 1-based line attribution. Line splices
//     (backslash-newline) join tokens across physical lines; raw strings,
//     digit separators and char literals are lexed per the language, so
//     flow-aware checks (function index, lock scopes) see real structure.
//   * `stripped` — a per-physical-line view with comments removed and
//     string/char literal bodies emptied (delimiters kept), the exact
//     shape the line-local pattern checks were written against.
//
// The lexer is deliberately preprocessor-naive: macros are not expanded,
// and tokens on a `#` directive line carry `pp = true` so structural
// consumers can skip macro bodies.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cpc::lint {

enum class TokKind : std::uint8_t {
  kIdent,    // identifier or keyword (text is the spelling)
  kNumber,   // pp-number, digit separators included in the spelling
  kPunct,    // punctuation; "::" and "->" are single tokens
  kString,   // string literal (body dropped, text is empty)
  kCharLit,  // character literal (body dropped, text is empty)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based physical line of the token's first char
  bool pp = false;       // token sits on a preprocessor-directive line
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<std::string> stripped;  // one entry per input line
};

LexOutput lex(const std::vector<std::string>& raw);

}  // namespace cpc::lint
