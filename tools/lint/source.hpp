#pragma once
// Shared source model for the lint library: file loading, fixture-aware
// categorisation, waiver collection, findings and report ordering.
//
// Both engines (the token engine in lint/checks.cpp and the reference
// regex engine in lint/legacy.cpp) consume the same SourceFile list and
// produce the same Finding shape, so the zero-diff comparison in
// tests/lint/zero_diff.sh diffs nothing but check semantics.

#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace cpc::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string id;
  std::string message;
};

struct SourceFile {
  std::filesystem::path path;
  std::string display;                  // generic path as given/walked
  std::vector<std::string> components;  // virtual components (fixture-aware)
  std::string category;                 // "src", "tools", "tests", ...
  std::string src_dir;                  // directory under src/, if any
  bool is_header = false;
  std::vector<std::string> raw;  // original lines
};

/// A file prepared by one engine: its stripped view plus waivers. The
/// stripped view is engine-supplied (the token engine's comes out of the
/// lexer, the legacy engine keeps its original stripper) so each engine's
/// checks see exactly the view they were written against.
struct Prepared {
  const SourceFile* file = nullptr;
  std::vector<std::string> code;               // stripped lines
  std::vector<std::set<std::string>> waivers;  // per line (0-based)
};

bool blank(const std::string& s);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parses `// cpc-lint: allow(CPC-LXXX[, ...])` waivers from the raw
/// lines. A waiver on a line with code applies to that line; a waiver on
/// a comment-only line applies to the next line that has code.
std::vector<std::set<std::string>> collect_waivers(
    const std::vector<std::string>& raw, const std::vector<std::string>& code);

/// Fills in components / category / src_dir from the path, looking
/// through a `lint/fixtures/` prefix so fixtures are categorised by the
/// virtual tree they impersonate.
void categorise(SourceFile& f);

/// Recursively collects C++ sources under root (skipping build/, dot
/// directories and lint/fixtures corpora unless passed explicitly).
/// Returns 0, or 2 on a walk error (message already printed).
int collect_files(const std::filesystem::path& root,
                  std::vector<std::filesystem::path>& files);

/// Loads one file; returns false (message printed) if unreadable.
bool load_file(const std::filesystem::path& p, SourceFile& f);

/// Appends a finding unless the line carries a waiver for this check.
void report(std::vector<Finding>& findings, const Prepared& f,
            std::size_t line_1based, const std::string& id,
            std::string message);

/// Stable report order: (file, line, id), ties kept in emission order.
void sort_findings(std::vector<Finding>& findings);

}  // namespace cpc::lint
