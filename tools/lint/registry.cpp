#include "lint/registry.hpp"

#include <cstring>

namespace cpc::lint {
namespace {

constexpr CheckInfo kTable[] = {
#define CPC_LINT_ROW(sym, id, title, doc) {CheckId::sym, id, title, doc},
#include "lint/lint_registry.def"
#undef CPC_LINT_ROW
};

// The .def must stay dense and in enum order: row i carries CheckId(i).
// (CPC-L007 additionally lints the textual enum-vs-def direction.)
static_assert(sizeof(kTable) / sizeof(kTable[0]) == kCheckCount,
              "lint_registry.def row count != CheckId enumerator count");

constexpr bool rows_in_enum_order() {
  for (std::size_t i = 0; i < kCheckCount; ++i) {
    if (kTable[i].check != static_cast<CheckId>(i)) return false;
  }
  return true;
}
static_assert(rows_in_enum_order(),
              "lint_registry.def rows are not in CheckId order");

}  // namespace

const CheckInfo* check_table() { return kTable; }

const CheckInfo* find_check(std::string_view id) {
  for (const CheckInfo& info : kTable) {
    if (id == info.id) return &info;
  }
  return nullptr;
}

}  // namespace cpc::lint
