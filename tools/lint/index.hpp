#pragma once
// Structural indexes built from the token stream: the include graph and a
// lightweight function/call/lock index. These power the flow-aware checks
// (CPC-L011 lock order, CPC-L012 poll-loop blocking, CPC-L013 discarded
// status) that a line-local pattern engine cannot express.
//
// The function index is heuristic by design (no preprocessor, no
// templates instantiated): it recognises function definitions by their
// `name(params) ... {` head shape at namespace/class scope, attributes
// everything inside the body extent (lambdas included) to that function,
// and resolves calls by name. Constructor bodies after an init list and
// heavily macro-generated definitions may be missed — the failure mode is
// a missed edge (false negative), never a phantom finding.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/source.hpp"

namespace cpc::lint {

// ---------------------------------------------------------------------------
// Include graph
// ---------------------------------------------------------------------------

struct IncludeEdge {
  std::size_t line = 0;  // 1-based line of the #include
  std::string header;    // quoted include path as written
};

struct IncludeGraph {
  // Keyed by SourceFile display path; edges in line order.
  std::map<std::string, std::vector<IncludeEdge>> edges;
};

IncludeGraph build_include_graph(const std::vector<SourceFile>& files);

// ---------------------------------------------------------------------------
// Function / call / lock index
// ---------------------------------------------------------------------------

struct CallSite {
  std::string name;       // simple callee name ("poll_sockets")
  std::string qualified;  // ::-qualified chain as written ("net::poll_sockets")
  std::size_t line = 0;
  std::size_t tok = 0;         // token index of the callee identifier
  bool in_thread_ctor = false; // inside std::thread(...) argument extent
};

struct LockSite {
  std::string mutex;  // normalised mutex identity ("TraceCache::mutex_")
  std::size_t line = 0;
  std::size_t tok = 0;        // token index of the MutexLock keyword
  std::size_t scope_end = 0;  // first token index past the RAII scope
};

struct FunctionDef {
  std::string name;        // simple name ("lookup")
  std::string qualified;   // as written at the definition ("TraceCache::lookup")
  std::string class_name;  // enclosing/qualifying class, if any
  const SourceFile* file = nullptr;
  std::size_t line = 0;
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
};

struct FunctionIndex {
  std::vector<FunctionDef> functions;
  // simple name -> indexes into `functions`
  std::map<std::string, std::vector<std::size_t>> by_name;
};

/// Builds the index from the lexed token streams (parallel to `files`).
FunctionIndex build_function_index(
    const std::vector<SourceFile>& files,
    const std::vector<std::vector<Token>>& tokens);

}  // namespace cpc::lint
