// cpc_faultcamp — seeded fault-injection campaign over the CPP hierarchy.
//
//   cpc_faultcamp [--workloads a,b,c] [--faults K] [--ops N] [--seed S]
//                 [--master-seed S] [--stride N] [--summary PATH] [--procs N]
//   cpc_faultcamp --trip-invariant
//
// For each workload the driver runs one fault-free golden simulation, then K
// seeded single-fault runs, classifying every fault as masked / detected /
// timing-only / silent / not-injected (see src/verify/campaign.hpp). Exit 0
// iff every campaign is clean (zero silent corruptions); exit 1 otherwise.
// --summary additionally writes a markdown report.
//
// --trip-invariant deliberately corrupts a CPP cache's metadata and runs the
// validator; the process exits with the invariant-violation code (4). CTest
// uses it to pin the exit-code contract.
//
// --procs N shards the per-workload campaigns across N forked worker
// processes (sim/ipc.hpp frames); a crashed worker's unfinished workloads
// are re-run in-process, so a worker segfault cannot lose campaign results.

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/cpp_hierarchy.hpp"
#include "sim/ipc.hpp"
#include "verify/campaign.hpp"
#include "verify/fault.hpp"

#include "cli_util.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: cpc_faultcamp [--workloads a,b,c] [--faults K] [--ops N]\n"
         "                     [--seed S] [--master-seed S] [--stride N]\n"
         "                     [--summary PATH] [--procs N]\n"
         "       cpc_faultcamp --trip-invariant\n";
  return cpc::cli::kExitUsage;
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::stringstream ss{arg};
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) out.push_back(name);
  }
  return out;
}

/// Corrupts a live CPP hierarchy on purpose and audits it, so tests can
/// observe the detection path end to end (exit code 4, diagnostic on stderr).
int trip_invariant() {
  using namespace cpc;
  core::CppHierarchy hierarchy;
  // Small compressible values → lines with populated PA flags to strike.
  for (std::uint32_t i = 0; i < 512; ++i) {
    hierarchy.write(i * 4, i % 7);
  }
  verify::FaultCommand command;
  command.kind = verify::FaultKind::kPaFlag;
  command.level = 1;
  command.seed = 42;
  if (!hierarchy.inject_fault(command)) {
    std::cerr << "error: no resident line to corrupt\n";
    return cli::kExitError;
  }
  hierarchy.validate();  // throws InvariantViolation → exit 4
  std::cerr << "error: corrupted metadata passed validation\n";
  return cli::kExitError;
}

void print_campaign(const cpc::verify::CampaignResult& result, std::ostream& out) {
  using namespace cpc::verify;
  out << result.workload << ": " << result.total() << " faults — "
      << result.masked << " masked, " << result.detected << " detected, "
      << result.timing_only << " timing-only, " << result.silent << " SILENT, "
      << result.not_injected << " not-injected"
      << (result.clean() ? "" : "  << CAMPAIGN FAILED") << '\n';
  for (const FaultRecord& record : result.records) {
    if (record.outcome != FaultOutcome::kSilent) continue;
    out << "  silent fault #" << record.index << ": "
        << fault_kind_name(record.command.kind) << " L" << int(record.command.level)
        << " seed=" << record.command.seed
        << " trigger=" << record.trigger_access << '\n';
  }
}

void write_summary(const std::string& path,
                   const std::vector<cpc::verify::CampaignResult>& results,
                   const cpc::verify::CampaignOptions& base) {
  using namespace cpc::verify;
  std::ofstream out(path);
  if (!out) throw cpc::cli::BadInput("cannot open summary file: " + path);
  out << "# Fault-injection campaign summary\n\n"
      << "Single-fault campaigns over the CPP hierarchy: each run injects one\n"
         "seeded fault (payload/PA/AA/VCP strike at L1 or L2, response-word\n"
         "drop, or fill delay) at a pseudo-random access and compares the\n"
         "outcome against a fault-free golden run. See docs/robustness.md.\n\n"
      << "- faults per workload: " << base.faults << '\n'
      << "- trace ops: " << base.trace_ops << '\n'
      << "- workload seed: 0x" << std::hex << base.workload_seed << '\n'
      << "- master fault seed: 0x" << base.master_seed << std::dec << '\n'
      << "- audit stride: " << base.audit_stride << "\n\n"
      << "| workload | faults | masked | detected | timing-only | silent | not-injected | clean |\n"
      << "|---|---|---|---|---|---|---|---|\n";
  std::size_t total = 0, silent = 0;
  for (const CampaignResult& r : results) {
    total += r.total();
    silent += r.silent;
    out << "| " << r.workload << " | " << r.total() << " | " << r.masked
        << " | " << r.detected << " | " << r.timing_only << " | " << r.silent
        << " | " << r.not_injected << " | " << (r.clean() ? "yes" : "**NO**")
        << " |\n";
  }
  out << "\nTotal: " << total << " faults, " << silent
      << " silent. Every injected fault was masked (bit-identical to golden),"
         " detected by an audit, or timing-only (architecturally identical"
         " delay effects).\n";
}

// ---------------------------------------------------------------------------
// Process-sharded campaigns (--procs)
// ---------------------------------------------------------------------------

/// Serializes a campaign result (prefixed with its workload-list index) for
/// a kBlob frame. Counts are recomputed on decode from the record outcomes.
std::string pack_campaign(std::size_t order,
                          const cpc::verify::CampaignResult& result) {
  namespace ipc = cpc::sim::ipc;
  std::string out;
  ipc::put_u64(out, order);
  ipc::put_string(out, result.workload);
  ipc::put_u64(out, result.golden_cycles);
  ipc::put_u64(out, result.golden_accesses);
  ipc::put_u64(out, result.records.size());
  for (const cpc::verify::FaultRecord& record : result.records) {
    ipc::put_u64(out, record.index);
    ipc::put_u64(out, static_cast<std::uint64_t>(record.command.kind));
    ipc::put_u64(out, static_cast<std::uint64_t>(record.command.level));
    ipc::put_u64(out, record.command.seed);
    ipc::put_u64(out, record.command.delay_cycles);
    ipc::put_u64(out, record.trigger_access);
    ipc::put_u64(out, static_cast<std::uint64_t>(record.outcome));
    ipc::put_string(out, record.detection);
  }
  return out;
}

bool unpack_campaign(std::string_view in, std::size_t& order,
                     cpc::verify::CampaignResult& result) {
  namespace ipc = cpc::sim::ipc;
  using cpc::verify::FaultKind;
  using cpc::verify::FaultOutcome;
  std::uint64_t order64 = 0, records = 0;
  std::uint64_t golden_cycles = 0, golden_accesses = 0;
  if (!ipc::get_u64(in, order64) || !ipc::get_string(in, result.workload) ||
      !ipc::get_u64(in, golden_cycles) ||
      !ipc::get_u64(in, golden_accesses) || !ipc::get_u64(in, records)) {
    return false;
  }
  order = static_cast<std::size_t>(order64);
  result.golden_cycles = golden_cycles;
  result.golden_accesses = golden_accesses;
  if (records > (1u << 20)) return false;
  result.records.clear();
  for (std::uint64_t i = 0; i < records; ++i) {
    cpc::verify::FaultRecord record;
    std::uint64_t index = 0, kind = 0, level = 0, delay = 0, outcome = 0;
    if (!ipc::get_u64(in, index) || !ipc::get_u64(in, kind) ||
        !ipc::get_u64(in, level) || !ipc::get_u64(in, record.command.seed) ||
        !ipc::get_u64(in, delay) || !ipc::get_u64(in, record.trigger_access) ||
        !ipc::get_u64(in, outcome) || !ipc::get_string(in, record.detection)) {
      return false;
    }
    if (kind >= cpc::verify::kFaultKindCount || outcome > 4) return false;
    record.index = static_cast<std::size_t>(index);
    record.command.kind = static_cast<FaultKind>(kind);
    record.command.level = static_cast<int>(level);
    record.command.delay_cycles = static_cast<unsigned>(delay);
    record.outcome = static_cast<FaultOutcome>(outcome);
    switch (record.outcome) {
      case FaultOutcome::kMasked:
        ++result.masked;
        break;
      case FaultOutcome::kDetected:
        ++result.detected;
        break;
      case FaultOutcome::kTimingOnly:
        ++result.timing_only;
        break;
      case FaultOutcome::kSilent:
        ++result.silent;
        break;
      case FaultOutcome::kNotInjected:
        ++result.not_injected;
        break;
    }
    result.records.push_back(std::move(record));
  }
  return true;
}

/// Runs the campaigns sharded across `procs` forked workers. A worker that
/// dies (crash, OOM kill) only costs a warning: its unfinished workloads are
/// re-run in this process, so the merged result list is always complete and
/// ordered exactly like the serial run.
std::vector<cpc::verify::CampaignResult> run_campaigns_sharded(
    const std::vector<std::string>& workloads,
    const cpc::verify::CampaignOptions& base, unsigned procs) {
  namespace ipc = cpc::sim::ipc;
  using cpc::verify::CampaignResult;

  std::vector<std::optional<CampaignResult>> slots(workloads.size());
  struct Shard {
    ipc::ChildProcess child;
    ipc::FrameDecoder decoder;
    bool alive = false;
  };
  std::deque<Shard> shards;
  procs = static_cast<unsigned>(
      std::min<std::size_t>(procs, workloads.size()));
  for (unsigned p = 0; p < procs; ++p) {
    std::vector<std::size_t> slice;
    for (std::size_t i = p; i < workloads.size(); i += procs) {
      slice.push_back(i);
    }
    shards.emplace_back();
    Shard& shard = shards.back();
    shard.child = ipc::spawn_worker({}, [&, slice](int write_fd) {
      for (const std::size_t index : slice) {
        cpc::verify::CampaignOptions options = base;
        options.workload = workloads[index];
        const CampaignResult result = cpc::verify::run_campaign(options);
        if (!ipc::write_frame(write_fd, ipc::FrameType::kBlob,
                              pack_campaign(index, result))) {
          return;  // supervisor gone
        }
      }
      // A failed kDone write means the supervisor is gone; the worker is
      // about to exit either way and has no one left to report to.
      (void)ipc::write_frame(write_fd, ipc::FrameType::kDone, {});
    });
    shard.alive = shard.child.valid();
  }

  std::vector<int> fds;
  std::vector<std::size_t> fd_shard;
  std::vector<bool> ready;
  char buffer[4096];
  const auto drain = [&](Shard& shard) {
    ipc::Frame frame;
    while (shard.decoder.next(frame) == ipc::FrameDecoder::Status::kFrame) {
      if (frame.type != ipc::FrameType::kBlob) continue;
      std::size_t order = 0;
      CampaignResult result;
      if (unpack_campaign(frame.payload, order, result) &&
          order < slots.size()) {
        std::cerr << "campaign: " << result.workload << " done ("
                  << result.total() << " faults)\n";
        slots[order] = std::move(result);
      }
    }
  };
  while (true) {
    fds.clear();
    fd_shard.clear();
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (shards[i].alive) {
        fds.push_back(shards[i].child.read_fd);
        fd_shard.push_back(i);
      }
    }
    if (fds.empty()) break;
    ipc::poll_readable(fds, 50, ready);
    for (std::size_t slot = 0; slot < fds.size(); ++slot) {
      if (!ready[slot]) continue;
      Shard& shard = shards[fd_shard[slot]];
      const long n = ipc::read_some(shard.child.read_fd, buffer, sizeof(buffer));
      if (n > 0) {
        shard.decoder.feed(buffer, static_cast<std::size_t>(n));
        drain(shard);
      } else {
        const ipc::ExitStatus status = ipc::wait_blocking(shard.child);
        ipc::close_fd(shard.child.read_fd);
        shard.alive = false;
        if (!status.clean()) {
          std::cerr << "warning: campaign worker died ("
                    << (status.signaled ? "signal " : "exit code ")
                    << status.code << ") — unfinished workloads re-run "
                    << "in-process\n";
        }
      }
    }
  }

  // Anything a dead worker never reported runs here, in order.
  std::vector<CampaignResult> results;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    if (!slots[i]) {
      cpc::verify::CampaignOptions options = base;
      options.workload = workloads[i];
      std::cerr << "campaign: " << workloads[i] << " (" << options.faults
                << " faults, " << options.trace_ops << " ops, re-run)...\n";
      slots[i] = cpc::verify::run_campaign(options);
    }
    results.push_back(std::move(*slots[i]));
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpc;

  std::vector<std::string> workloads = {"olden.treeadd", "olden.mst",
                                        "spec2000.181.mcf"};
  verify::CampaignOptions base;
  std::string summary_path;
  unsigned procs = 0;
  bool trip = false;

  const auto value_of = [&](int& i, const std::string& arg) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << arg << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--trip-invariant") {
      trip = true;
    } else if (arg == "--workloads") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      workloads = split_csv(v);
    } else if (arg == "--faults") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.faults = std::strtoull(v, nullptr, 0);
    } else if (arg == "--ops") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.trace_ops = std::strtoull(v, nullptr, 0);
    } else if (arg == "--seed") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.workload_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--master-seed") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.master_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--stride") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.audit_stride = std::strtoull(v, nullptr, 0);
    } else if (arg == "--summary") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      summary_path = v;
    } else if (arg == "--procs") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      procs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return usage();
    }
  }
  if (workloads.empty()) {
    std::cerr << "error: --workloads list is empty\n";
    return usage();
  }

  return cli::guarded_main([&]() -> int {
    if (trip) return trip_invariant();

    std::vector<verify::CampaignResult> results;
    bool all_clean = true;
    if (procs > 1 && sim::ipc::process_isolation_supported()) {
      results = run_campaigns_sharded(workloads, base, procs);
      for (const verify::CampaignResult& result : results) {
        print_campaign(result, std::cout);
        all_clean = all_clean && result.clean();
      }
    } else {
      for (const std::string& workload : workloads) {
        verify::CampaignOptions options = base;
        options.workload = workload;
        std::cerr << "campaign: " << workload << " (" << options.faults
                  << " faults, " << options.trace_ops << " ops)...\n";
        verify::CampaignResult result = verify::run_campaign(options);
        print_campaign(result, std::cout);
        all_clean = all_clean && result.clean();
        results.push_back(std::move(result));
      }
    }
    if (!summary_path.empty()) write_summary(summary_path, results, base);
    if (!all_clean) {
      std::cerr << "error: silent corruption escaped every audit — see the "
                   "silent fault lines above to reproduce\n";
      return cli::kExitError;
    }
    return cli::kExitOk;
  });
}
