// cpc_faultcamp — seeded fault-injection campaign over the CPP hierarchy.
//
//   cpc_faultcamp [--workloads a,b,c] [--faults K] [--ops N] [--seed S]
//                 [--master-seed S] [--stride N] [--summary PATH]
//   cpc_faultcamp --trip-invariant
//
// For each workload the driver runs one fault-free golden simulation, then K
// seeded single-fault runs, classifying every fault as masked / detected /
// timing-only / silent / not-injected (see src/verify/campaign.hpp). Exit 0
// iff every campaign is clean (zero silent corruptions); exit 1 otherwise.
// --summary additionally writes a markdown report.
//
// --trip-invariant deliberately corrupts a CPP cache's metadata and runs the
// validator; the process exits with the invariant-violation code (4). CTest
// uses it to pin the exit-code contract.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cpp_hierarchy.hpp"
#include "verify/campaign.hpp"
#include "verify/fault.hpp"

#include "cli_util.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: cpc_faultcamp [--workloads a,b,c] [--faults K] [--ops N]\n"
         "                     [--seed S] [--master-seed S] [--stride N]\n"
         "                     [--summary PATH]\n"
         "       cpc_faultcamp --trip-invariant\n";
  return cpc::cli::kExitUsage;
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::stringstream ss{arg};
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) out.push_back(name);
  }
  return out;
}

/// Corrupts a live CPP hierarchy on purpose and audits it, so tests can
/// observe the detection path end to end (exit code 4, diagnostic on stderr).
int trip_invariant() {
  using namespace cpc;
  core::CppHierarchy hierarchy;
  // Small compressible values → lines with populated PA flags to strike.
  for (std::uint32_t i = 0; i < 512; ++i) {
    hierarchy.write(i * 4, i % 7);
  }
  verify::FaultCommand command;
  command.kind = verify::FaultKind::kPaFlag;
  command.level = 1;
  command.seed = 42;
  if (!hierarchy.inject_fault(command)) {
    std::cerr << "error: no resident line to corrupt\n";
    return cli::kExitError;
  }
  hierarchy.validate();  // throws InvariantViolation → exit 4
  std::cerr << "error: corrupted metadata passed validation\n";
  return cli::kExitError;
}

void print_campaign(const cpc::verify::CampaignResult& result, std::ostream& out) {
  using namespace cpc::verify;
  out << result.workload << ": " << result.total() << " faults — "
      << result.masked << " masked, " << result.detected << " detected, "
      << result.timing_only << " timing-only, " << result.silent << " SILENT, "
      << result.not_injected << " not-injected"
      << (result.clean() ? "" : "  << CAMPAIGN FAILED") << '\n';
  for (const FaultRecord& record : result.records) {
    if (record.outcome != FaultOutcome::kSilent) continue;
    out << "  silent fault #" << record.index << ": "
        << fault_kind_name(record.command.kind) << " L" << int(record.command.level)
        << " seed=" << record.command.seed
        << " trigger=" << record.trigger_access << '\n';
  }
}

void write_summary(const std::string& path,
                   const std::vector<cpc::verify::CampaignResult>& results,
                   const cpc::verify::CampaignOptions& base) {
  using namespace cpc::verify;
  std::ofstream out(path);
  if (!out) throw cpc::cli::BadInput("cannot open summary file: " + path);
  out << "# Fault-injection campaign summary\n\n"
      << "Single-fault campaigns over the CPP hierarchy: each run injects one\n"
         "seeded fault (payload/PA/AA/VCP strike at L1 or L2, response-word\n"
         "drop, or fill delay) at a pseudo-random access and compares the\n"
         "outcome against a fault-free golden run. See docs/robustness.md.\n\n"
      << "- faults per workload: " << base.faults << '\n'
      << "- trace ops: " << base.trace_ops << '\n'
      << "- workload seed: 0x" << std::hex << base.workload_seed << '\n'
      << "- master fault seed: 0x" << base.master_seed << std::dec << '\n'
      << "- audit stride: " << base.audit_stride << "\n\n"
      << "| workload | faults | masked | detected | timing-only | silent | not-injected | clean |\n"
      << "|---|---|---|---|---|---|---|---|\n";
  std::size_t total = 0, silent = 0;
  for (const CampaignResult& r : results) {
    total += r.total();
    silent += r.silent;
    out << "| " << r.workload << " | " << r.total() << " | " << r.masked
        << " | " << r.detected << " | " << r.timing_only << " | " << r.silent
        << " | " << r.not_injected << " | " << (r.clean() ? "yes" : "**NO**")
        << " |\n";
  }
  out << "\nTotal: " << total << " faults, " << silent
      << " silent. Every injected fault was masked (bit-identical to golden),"
         " detected by an audit, or timing-only (architecturally identical"
         " delay effects).\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpc;

  std::vector<std::string> workloads = {"olden.treeadd", "olden.mst",
                                        "spec2000.181.mcf"};
  verify::CampaignOptions base;
  std::string summary_path;
  bool trip = false;

  const auto value_of = [&](int& i, const std::string& arg) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << arg << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--trip-invariant") {
      trip = true;
    } else if (arg == "--workloads") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      workloads = split_csv(v);
    } else if (arg == "--faults") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.faults = std::strtoull(v, nullptr, 0);
    } else if (arg == "--ops") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.trace_ops = std::strtoull(v, nullptr, 0);
    } else if (arg == "--seed") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.workload_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--master-seed") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.master_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--stride") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      base.audit_stride = std::strtoull(v, nullptr, 0);
    } else if (arg == "--summary") {
      if ((v = value_of(i, arg)) == nullptr) return usage();
      summary_path = v;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return usage();
    }
  }
  if (workloads.empty()) {
    std::cerr << "error: --workloads list is empty\n";
    return usage();
  }

  return cli::guarded_main([&]() -> int {
    if (trip) return trip_invariant();

    std::vector<verify::CampaignResult> results;
    bool all_clean = true;
    for (const std::string& workload : workloads) {
      verify::CampaignOptions options = base;
      options.workload = workload;
      std::cerr << "campaign: " << workload << " (" << options.faults
                << " faults, " << options.trace_ops << " ops)...\n";
      verify::CampaignResult result = verify::run_campaign(options);
      print_campaign(result, std::cout);
      all_clean = all_clean && result.clean();
      results.push_back(std::move(result));
    }
    if (!summary_path.empty()) write_summary(summary_path, results, base);
    if (!all_clean) {
      std::cerr << "error: silent corruption escaped every audit — see the "
                   "silent fault lines above to reproduce\n";
      return cli::kExitError;
    }
    return cli::kExitOk;
  });
}
