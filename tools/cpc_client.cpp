// cpc_client — submit one sweep to a cpc_serve daemon and stream the
// results to stdout as the daemon finishes each job.
//
//   cpc_client --socket PATH [--id NAME] [--deadline-ms N] [--retries N]
//              [--backoff-ms N] [--resume] [--quiet]
//              <trace-file> [config[,config...]]
//   cpc_client --socket PATH --workload NAME --ops N [--seed N]
//              [config[,config...]]
//
// Output is the cpc_run --sweep CSV (tools/sweep_csv.hpp), printed in job
// index order regardless of the order results arrive in, so the stream is
// bit-identical to a serial `cpc_run --sweep` over the same grid.
//
// Fault tolerance: the initial connect retries --retries times with capped
// exponential backoff (base --backoff-ms, cap 2s); a connection dropped
// mid-stream reconnects the same way and re-submits with the resume flag —
// the daemon replays journaled results, and per-index deduplication makes
// the replay invisible in the output.

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "sim/ipc.hpp"
#include "sim/journal.hpp"

#include "cli_util.hpp"
#include "sweep_csv.hpp"

namespace {

using namespace cpc;

int usage() {
  std::cerr
      << "usage: cpc_client --socket PATH [--id NAME] [--deadline-ms N]\n"
         "                  [--retries N] [--backoff-ms N] [--resume]\n"
         "                  [--codecs LIST] [--quiet] <trace-file>\n"
         "                  [config[,config...]]\n"
         "       cpc_client --socket PATH --workload NAME --ops N [--seed N]\n"
         "                  [--codecs LIST] [config[,config...]]\n"
         "  LIST: paper,fpc,bdi,wkdm or all (default: paper)\n";
  return cli::kExitUsage;
}

struct ClientFlags {
  std::string socket_path;
  std::string id;
  std::uint64_t deadline_ms = 0;
  unsigned retries = 5;        ///< connect attempts (initial and reconnect)
  std::uint64_t backoff_ms = 100;  ///< exponential base, capped at 2s
  bool resume = false;
  bool quiet = false;
  net::JobSpec spec;
};

/// Connects with capped exponential backoff. Returns -1 after exhausting
/// the attempt budget.
int connect_with_retry(const ClientFlags& flags) {
  std::uint64_t delay = flags.backoff_ms;
  for (unsigned attempt = 0; attempt < flags.retries; ++attempt) {
    if (attempt != 0) {
      if (!flags.quiet) {
        std::cerr << "cpc_client: retrying connect in " << delay << " ms\n";
      }
      sim::ipc::sleep_ms(delay);
      delay = std::min<std::uint64_t>(delay * 2, 2000);
    }
    const int fd = net::connect_unix(flags.socket_path);
    if (fd >= 0) return fd;
  }
  std::cerr << "error: cannot connect to " << flags.socket_path << " after "
            << flags.retries << " attempt(s)\n";
  return -1;
}

/// Blocking fd: push the whole buffer out.
bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const long n =
        net::write_socket(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Streaming state that survives reconnects: which indices we have already
/// seen (daemon replays are deduplicated here) and the in-order print
/// cursor.
struct Stream {
  std::size_t job_count = 0;
  bool header_printed = false;
  std::vector<std::optional<sim::JobResult>> results;
  std::vector<bool> failed;
  std::size_t next_to_print = 0;
  bool done = false;
  std::uint64_t done_ok = 0;
  std::uint64_t done_fail = 0;

  void flush_ready() {
    // Print the contiguous prefix of succeeded jobs. The cursor does not
    // advance past a failed index mid-stream: a reconnect resumes the sweep
    // and may yet turn that failure into a result, and a row printed out of
    // order can never be taken back.
    while (next_to_print < job_count && results[next_to_print].has_value()) {
      cli::print_sweep_csv_row(std::cout, *results[next_to_print]);
      std::cout.flush();
      ++next_to_print;
    }
  }

  /// kSweepDone makes the failures final; print what succeeded, in order.
  void final_flush() {
    for (; next_to_print < job_count; ++next_to_print) {
      if (results[next_to_print].has_value()) {
        cli::print_sweep_csv_row(std::cout, *results[next_to_print]);
      }
    }
    std::cout.flush();
  }

  /// A lost connection voids any failure whose job lacks a result: the
  /// resumed sweep re-runs exactly those jobs (journal `fail` lines do not
  /// restore), so they may still succeed.
  void forgive_failures() {
    for (std::size_t i = 0; i < job_count; ++i) {
      if (!results[i].has_value()) failed[i] = false;
    }
  }
};

enum class FrameVerdict { kContinue, kDisconnected, kRefused };

/// Applies one daemon message to the stream. Returns kRefused for terminal
/// refusals (shed/drain/reject), which set `exit_code`.
FrameVerdict apply_message(const net::Message& msg, const ClientFlags& flags,
                          Stream& stream, int& exit_code) {
  switch (msg.kind) {
    case net::MsgKind::kAccepted:
      stream.job_count = msg.a;
      stream.results.resize(stream.job_count);
      stream.failed.resize(stream.job_count, false);
      if (!stream.header_printed) {
        std::cout << cli::kSweepCsvHeader << '\n';
        stream.header_printed = true;
      }
      if (!flags.quiet) {
        std::cerr << "cpc_client: accepted (" << msg.a
                  << " jobs, queue depth " << msg.b << ")\n";
      }
      return FrameVerdict::kContinue;
    case net::MsgKind::kShed:
      std::cerr << "cpc_client: shed by daemon: " << msg.text << '\n';
      exit_code = cli::kExitError;
      return FrameVerdict::kRefused;
    case net::MsgKind::kDraining:
      std::cerr << "cpc_client: daemon draining: " << msg.text << '\n';
      exit_code = cli::kExitError;
      return FrameVerdict::kRefused;
    case net::MsgKind::kRejected:
      std::cerr << "cpc_client: rejected: " << msg.text << '\n';
      exit_code = cli::kExitBadInput;
      return FrameVerdict::kRefused;
    case net::MsgKind::kResult: {
      const std::size_t index = static_cast<std::size_t>(msg.a);
      if (index >= stream.job_count || stream.results[index].has_value()) {
        return FrameVerdict::kContinue;  // replayed duplicate
      }
      sim::JournalEntry entry =
          sim::decode_journal_line(msg.text, stream.job_count);
      if (entry.kind != sim::JournalEntry::Kind::kOk) {
        std::cerr << "cpc_client: dropping malformed result line for job "
                  << index << '\n';
        return FrameVerdict::kContinue;
      }
      stream.results[index] = std::move(entry.result);
      stream.flush_ready();
      return FrameVerdict::kContinue;
    }
    case net::MsgKind::kJobFailed: {
      const std::size_t index = static_cast<std::size_t>(msg.a);
      if (index >= stream.job_count || stream.failed[index] ||
          stream.results[index].has_value()) {
        return FrameVerdict::kContinue;  // replayed duplicate
      }
      stream.failed[index] = true;
      std::cerr << "job " << index << " failed: " << msg.text << '\n';
      return FrameVerdict::kContinue;
    }
    case net::MsgKind::kSweepDone:
      stream.done = true;
      stream.done_ok = msg.a;
      stream.done_fail = msg.b;
      return FrameVerdict::kContinue;
    case net::MsgKind::kSubmit:
      return FrameVerdict::kContinue;  // daemon never sends this; ignore
  }
  return FrameVerdict::kContinue;
}

/// One connection's worth of conversation: submit, then read until
/// kSweepDone, a refusal, or the socket drops.
FrameVerdict run_connection(int fd, const ClientFlags& flags, bool resume,
                            Stream& stream, int& exit_code) {
  net::Message submit;
  submit.kind = net::MsgKind::kSubmit;
  submit.id = flags.id;
  submit.b = resume ? 1 : 0;
  submit.text = net::encode_job_spec(flags.spec);
  if (!send_all(fd, net::frame_message(submit))) {
    return FrameVerdict::kDisconnected;
  }
  sim::ipc::FrameDecoder decoder;
  char buffer[4096];
  while (!stream.done) {
    const long n = net::read_socket(fd, buffer, sizeof(buffer));
    if (n < 0) return FrameVerdict::kDisconnected;
    if (n == 0) {  // blocking fd: only transient interruptions land here
      sim::ipc::sleep_ms(5);
      continue;
    }
    decoder.feed(buffer, static_cast<std::size_t>(n));
    sim::ipc::Frame frame;
    while (true) {
      const sim::ipc::FrameDecoder::Status status = decoder.next(frame);
      if (status == sim::ipc::FrameDecoder::Status::kNeedMore) break;
      if (status == sim::ipc::FrameDecoder::Status::kCorrupt) {
        std::cerr << "cpc_client: corrupt frame from daemon\n";
        return FrameVerdict::kDisconnected;
      }
      if (frame.type == sim::ipc::FrameType::kHeartbeat) continue;
      if (frame.type != sim::ipc::FrameType::kBlob) continue;
      net::Message msg;
      if (!net::decode_message(frame.payload, msg)) {
        std::cerr << "cpc_client: undecodable message from daemon\n";
        return FrameVerdict::kDisconnected;
      }
      const FrameVerdict verdict =
          apply_message(msg, flags, stream, exit_code);
      if (verdict != FrameVerdict::kContinue) return verdict;
      if (stream.done) break;
    }
  }
  return FrameVerdict::kContinue;
}

int client_main(const ClientFlags& flags) {
  Stream stream;
  int exit_code = cli::kExitOk;
  bool resume = flags.resume;
  unsigned drops = 0;
  while (true) {
    const int fd = connect_with_retry(flags);
    if (fd < 0) return cli::kExitError;
    const FrameVerdict verdict =
        run_connection(fd, flags, resume, stream, exit_code);
    int fd_to_close = fd;
    net::close_socket(fd_to_close);
    if (verdict == FrameVerdict::kRefused) return exit_code;
    if (verdict == FrameVerdict::kDisconnected) {
      if (++drops > flags.retries) {
        std::cerr << "error: connection to daemon lost " << drops
                  << " time(s); giving up\n";
        return cli::kExitError;
      }
      if (!flags.quiet) {
        std::cerr << "cpc_client: connection lost mid-stream; resuming\n";
      }
      stream.forgive_failures();
      resume = true;  // daemon replays journaled results; dedup absorbs them
      continue;
    }
    break;  // kContinue with stream.done
  }
  stream.final_flush();
  if (!flags.quiet) {
    std::cerr << "cpc_client: sweep done (" << stream.done_ok << " ok, "
              << stream.done_fail << " failed)\n";
  }
  // The daemon's kSweepDone tally is authoritative — per-connection failure
  // notices may have been voided by a resume that re-ran those jobs.
  return stream.done_fail > 0 ? cli::kExitError : cli::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  ClientFlags flags;
  std::vector<std::string> positional;
  const auto value_of = [&](int& i, const std::string& arg) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << arg << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.socket_path = v;
    } else if (arg == "--id") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.id = v;
    } else if (arg == "--deadline-ms") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.deadline_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--retries") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.retries = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (flags.retries == 0) flags.retries = 1;
    } else if (arg == "--backoff-ms") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.backoff_ms = std::strtoull(v, nullptr, 10);
      if (flags.backoff_ms == 0) flags.backoff_ms = 1;
    } else if (arg == "--workload") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.spec.workload = v;
    } else if (arg == "--ops") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.spec.trace_ops = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.spec.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--codecs") {
      const char* v = value_of(i, arg);
      if (v == nullptr) return usage();
      flags.spec.codecs = v;
    } else if (arg == "--resume") {
      flags.resume = true;
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (flags.socket_path.empty()) return usage();
  if (flags.spec.workload.empty()) {
    if (positional.empty()) return usage();
    flags.spec.trace_path = positional.front();
    positional.erase(positional.begin());
  }
  std::string configs;
  for (const std::string& arg : positional) {
    if (!configs.empty()) configs += ',';
    configs += arg;
  }
  flags.spec.configs = configs;
  flags.spec.deadline_ms = flags.deadline_ms;
  if (flags.id.empty()) {
    flags.id = "c" + std::to_string(static_cast<unsigned long>(::getpid()));
  }

  return cpc::cli::guarded_main([&]() -> int { return client_main(flags); });
}
